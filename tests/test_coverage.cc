/**
 * @file
 * Unit tests for the coverage-requirement engine: per-kind requirement
 * templates, covered/uncovered classification for every Req1–Req5
 * behaviour, select-case discovery, NB-select handling, per-node
 * instantiation with cross-run merging, and the coverage-percentage
 * dynamics (growth and drop-on-discovery).
 */

#include <gtest/gtest.h>

#include "analysis/coverage.hh"
#include "chan/chan.hh"
#include "chan/select.hh"
#include "staticmodel/scanner.hh"
#include "sync/sync.hh"
#include "test_util.hh"

using namespace goat;
using namespace goat::analysis;
using namespace goat::staticmodel;
using goat::test::runProgram;

namespace {

/** Shorthand: run a program and fold the trace into a fresh state. */
CoverageState
coverOne(std::function<void()> fn, uint64_t seed = 1)
{
    CoverageState cov;
    auto rr = runProgram(std::move(fn), seed);
    cov.addEct(rr.ect);
    return cov;
}

} // namespace

TEST(CoverageKeys, KeySyntax)
{
    Cu cu(SourceLoc("k.cc", 12), CuKind::Send);
    EXPECT_EQ(CoverageState::key(cu, ReqType::Blocked), "k.cc:12 send blocked");
    Cu sel(SourceLoc("k.cc", 30), CuKind::Select);
    EXPECT_EQ(CoverageState::key(sel, ReqType::Nop, 2),
              "k.cc:30 select/case2 nop");
}

TEST(Coverage, StaticModelSeedsRequirements)
{
    CuTable t;
    t.add(Cu(SourceLoc("p.cc", 1), CuKind::Send));
    t.add(Cu(SourceLoc("p.cc", 2), CuKind::Lock));
    t.add(Cu(SourceLoc("p.cc", 3), CuKind::Go));
    CoverageState cov(t);
    // send: 3 reqs, lock: 2 reqs, go: 1 req.
    EXPECT_EQ(cov.totalRequirements(), 6u);
    EXPECT_EQ(cov.coveredCount(), 0u);
    EXPECT_EQ(cov.percent(), 0.0);
}

TEST(Coverage, EmptyUniverseIsFullyCovered)
{
    CoverageState cov;
    EXPECT_EQ(cov.percent(), 100.0);
}

TEST(Coverage, SendRecvBehaviours)
{
    auto cov = coverOne([] {
        Chan<int> c(1);
        c.send(1); // buffered: NOP
        go([c]() mutable {
            c.send(2); // buffer full: blocked
        });
        yield();
        c.recv(); // frees the slot: unblocking
    });
    bool nop = false, blocked = false, unblocking = false;
    for (const auto &k : cov.uncovered())
        (void)k;
    // Scan covered keys via isCovered on the table CUs.
    for (const auto &cu : cov.cuTable().all()) {
        if (cu.kind == CuKind::Send) {
            nop |= cov.isCovered(CoverageState::key(cu, ReqType::Nop));
            blocked |=
                cov.isCovered(CoverageState::key(cu, ReqType::Blocked));
        }
        if (cu.kind == CuKind::Recv) {
            unblocking |=
                cov.isCovered(CoverageState::key(cu, ReqType::Unblocking));
        }
    }
    EXPECT_TRUE(nop);
    EXPECT_TRUE(blocked);
    EXPECT_TRUE(unblocking);
}

TEST(Coverage, BlockedCoveredEvenWhenGoroutineLeaks)
{
    // The paper's Table III: the leak run covers "send-blocked" even
    // though the sender never completes.
    auto cov = coverOne([] {
        Chan<int> c;
        go([c]() mutable { c.send(1); }); // leaks parked
        yield();
    });
    bool send_blocked = false;
    for (const auto &cu : cov.cuTable().all())
        if (cu.kind == CuKind::Send)
            send_blocked |=
                cov.isCovered(CoverageState::key(cu, ReqType::Blocked));
    EXPECT_TRUE(send_blocked);
}

TEST(Coverage, LockBlockedAndBlocking)
{
    auto cov = coverOne([] {
        gosync::Mutex m;
        m.lock();
        go([&] {
            m.lock(); // blocked; marks main's acquisition as blocking
            m.unlock();
        });
        yield();
        m.unlock();
        yield();
    });
    bool blocked = false, blocking = false;
    for (const auto &cu : cov.cuTable().all()) {
        if (cu.kind != CuKind::Lock)
            continue;
        blocked |= cov.isCovered(CoverageState::key(cu, ReqType::Blocked));
        blocking |=
            cov.isCovered(CoverageState::key(cu, ReqType::Blocking));
    }
    EXPECT_TRUE(blocked);
    EXPECT_TRUE(blocking);
}

TEST(Coverage, UnlockUnblockingAndNop)
{
    auto cov = coverOne([] {
        gosync::Mutex m;
        m.lock();
        m.unlock(); // NOP: nobody waiting
        m.lock();
        go([&] {
            m.lock();
            m.unlock();
        });
        yield();
        m.unlock(); // unblocking: wakes the child
        yield();
        yield();
    });
    int unlock_covered = 0;
    for (const auto &cu : cov.cuTable().all()) {
        if (cu.kind != CuKind::Unlock)
            continue;
        if (cov.isCovered(CoverageState::key(cu, ReqType::Nop)))
            ++unlock_covered;
        if (cov.isCovered(CoverageState::key(cu, ReqType::Unblocking)))
            ++unlock_covered;
    }
    EXPECT_GE(unlock_covered, 2);
}

TEST(Coverage, CloseSignalBroadcastDone)
{
    auto cov = coverOne([] {
        Chan<int> c;
        go([c]() mutable { c.recvOk(); });
        yield();
        c.close(); // unblocking close

        gosync::WaitGroup wg;
        wg.add(1);
        go([&] { wg.wait(); });
        yield();
        wg.done(); // unblocking done
        yield();

        gosync::Mutex m;
        gosync::Cond cv(m);
        cv.signal(); // NOP signal
        go([&] {
            m.lock();
            cv.wait();
            m.unlock();
        });
        yield();
        m.lock();
        cv.broadcast(); // unblocking broadcast
        m.unlock();
        yield();
    });
    bool close_unb = false, done_unb = false, sig_nop = false,
         bcast_unb = false;
    for (const auto &cu : cov.cuTable().all()) {
        auto key_u = CoverageState::key(cu, ReqType::Unblocking);
        auto key_n = CoverageState::key(cu, ReqType::Nop);
        if (cu.kind == CuKind::Close)
            close_unb |= cov.isCovered(key_u);
        if (cu.kind == CuKind::Done)
            done_unb |= cov.isCovered(key_u);
        if (cu.kind == CuKind::Signal)
            sig_nop |= cov.isCovered(key_n);
        if (cu.kind == CuKind::Broadcast)
            bcast_unb |= cov.isCovered(key_u);
    }
    EXPECT_TRUE(close_unb);
    EXPECT_TRUE(done_unb);
    EXPECT_TRUE(sig_nop);
    EXPECT_TRUE(bcast_unb);
}

TEST(Coverage, GoCuCoveredOnSpawn)
{
    auto cov = coverOne([] {
        go([] {});
        yield();
    });
    bool go_nop = false;
    for (const auto &cu : cov.cuTable().all())
        if (cu.kind == CuKind::Go)
            go_nop |= cov.isCovered(CoverageState::key(cu, ReqType::Nop));
    EXPECT_TRUE(go_nop);
}

TEST(Coverage, SelectCaseDiscoveryCreatesTriples)
{
    auto cov = coverOne([] {
        Chan<int> a, b;
        go([a]() mutable { a.send(1); });
        yield();
        Select().onRecv<int>(a, {}).onRecv<int>(b, {}).run();
        yield();
    });
    // The select CU must have case0/case1 requirement triples, and the
    // chosen ready case (case0, which woke the parked sender) must be
    // covered as unblocking.
    const Cu *sel = nullptr;
    for (const auto &cu : cov.cuTable().all())
        if (cu.kind == CuKind::Select)
            sel = &cu;
    ASSERT_NE(sel, nullptr);
    EXPECT_TRUE(
        cov.isRequired(CoverageState::key(*sel, ReqType::Blocked, 0)));
    EXPECT_TRUE(
        cov.isRequired(CoverageState::key(*sel, ReqType::Blocked, 1)));
    EXPECT_TRUE(
        cov.isCovered(CoverageState::key(*sel, ReqType::Unblocking, 0)));
}

TEST(Coverage, BlockedSelectCoversAllCases)
{
    auto cov = coverOne([] {
        Chan<int> a, b;
        go([a]() mutable {
            yield();
            a.send(1);
        });
        Select().onRecv<int>(a, {}).onRecv<int>(b, {}).run();
        yield();
    });
    const Cu *sel = nullptr;
    for (const auto &cu : cov.cuTable().all())
        if (cu.kind == CuKind::Select)
            sel = &cu;
    ASSERT_NE(sel, nullptr);
    EXPECT_TRUE(
        cov.isCovered(CoverageState::key(*sel, ReqType::Blocked, 0)));
    EXPECT_TRUE(
        cov.isCovered(CoverageState::key(*sel, ReqType::Blocked, 1)));
}

TEST(Coverage, NonBlockingSelectUsesReq4)
{
    auto cov = coverOne([] {
        Chan<int> a;
        Select().onRecv<int>(a, {}).onDefault().run(); // default: NOP
    });
    const Cu *sel = nullptr;
    for (const auto &cu : cov.cuTable().all())
        if (cu.kind == CuKind::Select)
            sel = &cu;
    ASSERT_NE(sel, nullptr);
    EXPECT_TRUE(cov.isCovered(CoverageState::key(*sel, ReqType::Nop)));
    EXPECT_TRUE(
        cov.isRequired(CoverageState::key(*sel, ReqType::Unblocking)));
    // Default-carrying selects get no per-case triples (Req2 applies
    // only to selects without default).
    EXPECT_FALSE(
        cov.isRequired(CoverageState::key(*sel, ReqType::Blocked, 0)));
}

TEST(Coverage, PercentGrowsAcrossRuns)
{
    CoverageState cov;
    auto prog = [](uint64_t variant) {
        return [variant] {
            Chan<int> c(1);
            if (variant == 0) {
                c.send(1); // NOP only
            } else {
                go([c]() mutable { c.send(2); });
                yield();
                c.recv();
                yield();
            }
        };
    };
    auto r1 = runProgram(prog(0), 1);
    cov.addEct(r1.ect);
    double p1 = cov.percent();
    auto r2 = runProgram(prog(1), 2);
    cov.addEct(r2.ect);
    // Run 2 adds behaviours; the covered count must grow.
    EXPECT_GT(cov.coveredCount(), 0u);
    EXPECT_GT(cov.totalRequirements(), 3u);
    (void)p1;
}

TEST(Coverage, DiscoveringNewGoroutineCanDropPercent)
{
    // Run 1 covers its whole (tiny) requirement universe: only go CUs.
    // Run 2 discovers a new goroutine node whose send instantiates six
    // new requirements with only two covered — coverage drops (the
    // paper's fig. 6b D1 drop).
    CoverageState cov;
    auto r1 = runProgram([] {
        go([] {});
        yield();
    });
    cov.addEct(r1.ect);
    double p1 = cov.percent();
    EXPECT_EQ(p1, 100.0);

    auto r2 = runProgram([] {
        go([] {});
        yield();
        Chan<int> d;
        go([d]() mutable { d.send(9); }); // parks: 1 of 3 behaviours
        yield();
    });
    cov.addEct(r2.ect);
    double p2 = cov.percent();
    EXPECT_LT(p2, p1);
}

TEST(Coverage, NodeLevelInstancesUseEquivalenceKeys)
{
    // Two workers from the same go statement map to one node: the
    // node-level requirement set must not double.
    CoverageState cov;
    auto rr = runProgram([] {
        Chan<int> c(4);
        for (int i = 0; i < 2; ++i) {
            go([c]() mutable { c.send(1); });
        }
        for (int i = 0; i < 3; ++i)
            yield();
    });
    cov.addEct(rr.ect);
    size_t total_two_workers = cov.totalRequirements();

    CoverageState cov2;
    auto rr2 = runProgram([] {
        Chan<int> c(4);
        for (int i = 0; i < 1; ++i) {
            go([c]() mutable { c.send(1); });
        }
        for (int i = 0; i < 2; ++i)
            yield();
    });
    cov2.addEct(rr2.ect);
    // Same requirement universe whether the loop spawns 1 or 2 workers
    // (equivalent goroutines share one global-tree node).
    EXPECT_EQ(total_two_workers, cov2.totalRequirements());
}

TEST(Coverage, TableStrListsRequirements)
{
    auto cov = coverOne([] {
        Chan<int> c(1);
        c.send(1);
        c.recv();
    });
    std::string table = cov.tableStr();
    EXPECT_NE(table.find("send"), std::string::npos);
    EXPECT_NE(table.find("nop"), std::string::npos);
    EXPECT_NE(table.find("yes"), std::string::npos);
    EXPECT_NE(table.find("no"), std::string::npos);
}

TEST(Coverage, RangeTreatedAsReceive)
{
    auto cov = coverOne([] {
        Chan<int> c(4);
        go([c]() mutable {
            c.send(1);
            c.close();
        });
        c.range([](int) {});
        yield();
    });
    // The range loop's receives produce ChRecv events; the CU resolves
    // (dynamically) to a recv-shaped requirement set that gets covered.
    bool any_recv_covered = false;
    for (const auto &cu : cov.cuTable().all()) {
        if (cu.kind == CuKind::Recv || cu.kind == CuKind::Range) {
            any_recv_covered |=
                cov.isCovered(CoverageState::key(cu, ReqType::Blocked)) ||
                cov.isCovered(CoverageState::key(cu, ReqType::Unblocking)) ||
                cov.isCovered(CoverageState::key(cu, ReqType::Nop));
        }
    }
    EXPECT_TRUE(any_recv_covered);
}
