/**
 * @file
 * Cross-cutting property suites (parameterized sweeps):
 *
 *  P1 every trace the runtime produces — across kernels, seeds, and
 *     delay bounds — satisfies the ECT well-formedness invariants;
 *  P2 channel conservation: with matching producer/consumer counts,
 *     every message is delivered exactly once, for all capacities and
 *     goroutine counts;
 *  P3 executions are bit-deterministic per (seed, D);
 *  P4 the coverage engine's covered set is always a subset of the
 *     required set and its percentage is well-defined;
 *  P5 mutual exclusion holds under arbitrary noise seeds.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <tuple>

#include "analysis/coverage.hh"
#include "analysis/validate.hh"
#include "chan/chan.hh"
#include "goat/engine.hh"
#include "goker/registry.hh"
#include "sync/sync.hh"
#include "test_util.hh"

using namespace goat;
using goat::test::runProgram;

// ---------------------------------------------------------------------
// P1: trace well-formedness over the whole benchmark suite.
// ---------------------------------------------------------------------

class TraceWellFormed : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TraceWellFormed, AllSeedsAndDelayBounds)
{
    const auto *kernel =
        goker::KernelRegistry::instance().find(GetParam());
    ASSERT_NE(kernel, nullptr);
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        for (int d : {0, 3}) {
            engine::SingleRun sr =
                engine::runOnce(kernel->fn, seed, d, 0.05, 400'000);
            auto v = analysis::validateEct(sr.ect);
            EXPECT_TRUE(v.ok())
                << kernel->name << " seed " << seed << " d " << d
                << ":\n" << v.str();
        }
    }
}

namespace {

std::vector<std::string>
kernelNames()
{
    std::vector<std::string> names;
    for (const auto *k : goker::KernelRegistry::instance().all())
        names.push_back(k->name);
    return names;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    AllKernels, TraceWellFormed, ::testing::ValuesIn(kernelNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// ---------------------------------------------------------------------
// P2: channel conservation sweep.
// ---------------------------------------------------------------------

class ChannelConservation
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(ChannelConservation, NoLostOrDuplicatedMessages)
{
    auto [capacity, producers, messages] = GetParam();
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        std::multiset<int> received;
        auto rr = runProgram(
            [&, capacity = capacity, producers = producers,
             messages = messages] {
                Chan<int> c(static_cast<size_t>(capacity));
                gosync::WaitGroup wg;
                wg.add(producers);
                for (int p = 0; p < producers; ++p) {
                    go([&, c, p]() mutable {
                        for (int m = 0; m < messages; ++m)
                            c.send(p * 1000 + m);
                        wg.done();
                    });
                }
                go([&, c]() mutable {
                    wg.wait();
                    c.close();
                });
                c.range([&](int v) { received.insert(v); });
            },
            seed, 0.1);
        ASSERT_EQ(rr.exec.outcome, runtime::RunOutcome::Ok);
        EXPECT_TRUE(rr.exec.leaked.empty());
        ASSERT_EQ(received.size(),
                  static_cast<size_t>(producers * messages));
        for (int p = 0; p < producers; ++p)
            for (int m = 0; m < messages; ++m)
                EXPECT_EQ(received.count(p * 1000 + m), 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChannelConservation,
    ::testing::Combine(::testing::Values(0, 1, 4, 16),  // capacity
                       ::testing::Values(1, 2, 5),      // producers
                       ::testing::Values(1, 7)),        // messages each
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>> &info) {
        return "cap" + std::to_string(std::get<0>(info.param)) + "_p" +
               std::to_string(std::get<1>(info.param)) + "_m" +
               std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// P3: determinism per (seed, D).
// ---------------------------------------------------------------------

class Determinism : public ::testing::TestWithParam<int>
{
};

TEST_P(Determinism, IdenticalTracesForIdenticalSeeds)
{
    int d = GetParam();
    const auto *kernel =
        goker::KernelRegistry::instance().find("kubernetes_11298");
    ASSERT_NE(kernel, nullptr);
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        auto a = engine::runOnce(kernel->fn, seed, d);
        auto b = engine::runOnce(kernel->fn, seed, d);
        ASSERT_EQ(a.ect.size(), b.ect.size()) << "seed " << seed;
        for (size_t i = 0; i < a.ect.size(); ++i) {
            EXPECT_EQ(a.ect.events()[i].type, b.ect.events()[i].type);
            EXPECT_EQ(a.ect.events()[i].gid, b.ect.events()[i].gid);
            EXPECT_EQ(a.ect.events()[i].args[0],
                      b.ect.events()[i].args[0]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(DelayBounds, Determinism,
                         ::testing::Values(0, 1, 2, 3, 4));

// ---------------------------------------------------------------------
// P4: coverage-set invariants across random executions.
// ---------------------------------------------------------------------

class CoverageInvariants : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CoverageInvariants, CoveredSubsetOfRequired)
{
    const auto *kernel =
        goker::KernelRegistry::instance().find(GetParam());
    ASSERT_NE(kernel, nullptr);
    analysis::CoverageState cov(goker::kernelCuTable(*kernel));
    size_t prev_covered = 0;
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        auto sr = engine::runOnce(kernel->fn, seed, 2, 0.05, 400'000);
        cov.addEct(sr.ect);
        EXPECT_LE(cov.coveredCount(), cov.totalRequirements());
        EXPECT_GE(cov.coveredCount(), prev_covered)
            << "covered set must be monotone";
        prev_covered = cov.coveredCount();
        EXPECT_GE(cov.percent(), 0.0);
        EXPECT_LE(cov.percent(), 100.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Representatives, CoverageInvariants,
    ::testing::Values("etcd_7443", "kubernetes_11298", "moby_28462",
                      "serving_2137", "hugo_3251"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// ---------------------------------------------------------------------
// P5: mutual exclusion under noise.
// ---------------------------------------------------------------------

class MutualExclusion : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(MutualExclusion, CriticalSectionsNeverOverlap)
{
    uint64_t seed = GetParam();
    int inside = 0, max_inside = 0, entries = 0;
    auto rr = runProgram(
        [&] {
            gosync::Mutex m;
            for (int i = 0; i < 5; ++i) {
                go([&] {
                    for (int r = 0; r < 3; ++r) {
                        m.lock();
                        ++inside;
                        ++entries;
                        max_inside = std::max(max_inside, inside);
                        yield(); // maximally hostile interleaving point
                        --inside;
                        m.unlock();
                    }
                });
            }
            for (int i = 0; i < 60; ++i)
                yield();
        },
        seed, 0.15);
    EXPECT_EQ(rr.exec.outcome, runtime::RunOutcome::Ok);
    EXPECT_EQ(max_inside, 1);
    EXPECT_EQ(entries, 15);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutualExclusion,
                         ::testing::Range<uint64_t>(1, 13));
