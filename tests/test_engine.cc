/**
 * @file
 * Integration tests for the GoAT engine and the tool harness: bug
 * detection on buggy/clean programs, stop-on-bug and coverage-threshold
 * termination, seed determinism, Table IV cell formatting, and the
 * qualitative tool-capability matrix from the paper (GoAT ⊇ goleak ⊇
 * builtin; LockDL sees only lock bugs).
 */

#include <gtest/gtest.h>

#include "chan/chan.hh"
#include "goat/engine.hh"
#include "goat/tool.hh"
#include "goker/registry.hh"
#include "sync/sync.hh"
#include "test_util.hh"

using namespace goat;
using namespace goat::engine;
using analysis::Verdict;

namespace {

/** Deterministically leaking program. */
void
leakyProgram()
{
    Chan<int> c;
    go([c]() mutable { c.send(1); });
    yield();
}

/** Deterministically clean program. */
void
cleanProgram()
{
    Chan<int> c(1);
    go([c]() mutable { c.send(1); });
    yield();
    c.recv();
    yield();
}

/** Globally deadlocking program. */
void
gdlProgram()
{
    Chan<int> c;
    c.recv();
}

/** Crashing program. */
void
crashProgram()
{
    Chan<int> c;
    c.close();
    c.send(1);
}

} // namespace

TEST(Engine, DetectsLeakOnFirstIteration)
{
    GoatConfig cfg;
    cfg.maxIterations = 10;
    GoatEngine engine(cfg);
    GoatResult result = engine.run(leakyProgram);
    EXPECT_TRUE(result.bugFound);
    EXPECT_EQ(result.bugIteration, 1);
    EXPECT_EQ(result.firstBug.verdict, Verdict::PartialDeadlock);
    EXPECT_FALSE(result.report.empty());
}

TEST(Engine, CleanProgramRunsAllIterations)
{
    GoatConfig cfg;
    cfg.maxIterations = 5;
    cfg.noiseProb = 0.0;
    GoatEngine engine(cfg);
    GoatResult result = engine.run(cleanProgram);
    EXPECT_FALSE(result.bugFound);
    EXPECT_EQ(result.iterations.size(), 5u);
}

TEST(Engine, StopOnBugHaltsEarly)
{
    GoatConfig cfg;
    cfg.maxIterations = 100;
    GoatEngine engine(cfg);
    GoatResult result = engine.run(leakyProgram);
    EXPECT_TRUE(result.bugFound);
    EXPECT_EQ(result.iterations.size(), 1u);
}

TEST(Engine, KeepsIteratingWithoutStopOnBug)
{
    GoatConfig cfg;
    cfg.maxIterations = 4;
    cfg.stopOnBug = false;
    GoatEngine engine(cfg);
    GoatResult result = engine.run(leakyProgram);
    EXPECT_TRUE(result.bugFound);
    EXPECT_EQ(result.iterations.size(), 4u);
}

TEST(Engine, GlobalDeadlockDetected)
{
    GoatConfig cfg;
    GoatEngine engine(cfg);
    GoatResult result = engine.run(gdlProgram);
    EXPECT_TRUE(result.bugFound);
    EXPECT_EQ(result.firstBug.verdict, Verdict::GlobalDeadlock);
}

TEST(Engine, CrashDetected)
{
    GoatConfig cfg;
    GoatEngine engine(cfg);
    GoatResult result = engine.run(crashProgram);
    EXPECT_TRUE(result.bugFound);
    EXPECT_EQ(result.firstBug.verdict, Verdict::Crash);
    EXPECT_EQ(result.firstBugExec.panicMsg, "send on closed channel");
}

TEST(Engine, CoverageCollectedPerIteration)
{
    GoatConfig cfg;
    cfg.maxIterations = 3;
    cfg.collectCoverage = true;
    cfg.stopOnBug = false;
    cfg.noiseProb = 0.0;
    GoatEngine engine(cfg);
    GoatResult result = engine.run(cleanProgram);
    ASSERT_EQ(result.iterations.size(), 3u);
    for (const auto &it : result.iterations)
        EXPECT_GE(it.coveragePct, 0.0);
    EXPECT_GT(result.finalCoverage, 0.0);
}

TEST(Engine, CoverageThresholdStopsCampaign)
{
    GoatConfig cfg;
    cfg.maxIterations = 50;
    cfg.collectCoverage = true;
    cfg.covThreshold = 1.0; // trivially reached
    cfg.stopOnBug = false;
    cfg.noiseProb = 0.0;
    GoatEngine engine(cfg);
    GoatResult result = engine.run(cleanProgram);
    EXPECT_LT(result.iterations.size(), 50u);
}

TEST(Engine, SeedsDifferPerIteration)
{
    GoatConfig cfg;
    GoatEngine engine(cfg);
    EXPECT_NE(engine.iterationSeed(1), engine.iterationSeed(2));
    EXPECT_NE(engine.iterationSeed(2), engine.iterationSeed(3));
}

TEST(Engine, DeterministicAcrossRepeatedCampaigns)
{
    GoatConfig cfg;
    cfg.maxIterations = 20;
    auto r1 = GoatEngine(cfg).run(leakyProgram);
    auto r2 = GoatEngine(cfg).run(leakyProgram);
    EXPECT_EQ(r1.bugIteration, r2.bugIteration);
}

TEST(Engine, RunOnceProducesTraceAndVerdict)
{
    SingleRun sr = runOnce(leakyProgram, 42);
    EXPECT_FALSE(sr.ect.empty());
    EXPECT_EQ(sr.dl.verdict, Verdict::PartialDeadlock);
    EXPECT_EQ(sr.ect.meta("seed"), "42");
}

TEST(Tool, NamesAndDelayBounds)
{
    EXPECT_STREQ(toolName(ToolKind::GoatD0), "goat-d0");
    EXPECT_STREQ(toolName(ToolKind::Goleak), "goleak");
    EXPECT_EQ(toolDelayBound(ToolKind::GoatD3), 3);
    EXPECT_EQ(toolDelayBound(ToolKind::Builtin), -1);
}

TEST(Tool, GoatDetectsLeakBaselineComparison)
{
    // The capability matrix on a deterministic leak with main exiting:
    // GoAT and goleak detect it; builtin and LockDL do not.
    auto goat_r = runTool(ToolKind::GoatD0, leakyProgram, 5, 7);
    EXPECT_TRUE(goat_r.verdict.detected);
    EXPECT_EQ(goat_r.verdict.label, "PDL-1");
    EXPECT_EQ(goat_r.firstDetectIteration, 1);

    auto goleak_r = runTool(ToolKind::Goleak, leakyProgram, 5, 7);
    EXPECT_TRUE(goleak_r.verdict.detected);

    auto builtin_r = runTool(ToolKind::Builtin, leakyProgram, 5, 7);
    EXPECT_FALSE(builtin_r.verdict.detected);

    auto lockdl_r = runTool(ToolKind::LockDL, leakyProgram, 5, 7);
    EXPECT_FALSE(lockdl_r.verdict.detected);
}

TEST(Tool, AllToolsSeeGlobalDeadlock)
{
    for (auto tool : {ToolKind::GoatD0, ToolKind::Builtin,
                      ToolKind::Goleak, ToolKind::LockDL}) {
        auto r = runTool(tool, gdlProgram, 3, 11);
        EXPECT_TRUE(r.verdict.detected) << toolName(tool);
    }
}

TEST(Tool, LockDlDetectsDoubleLockLeak)
{
    auto prog = [] {
        auto m = std::make_shared<gosync::Mutex>();
        go([m] {
            m->lock();
            m->lock(); // AA deadlock: leaks, main exits
            m->unlock();
            m->unlock();
        });
        sleepMs(5);
    };
    auto lockdl_r = runTool(ToolKind::LockDL, prog, 5, 13);
    EXPECT_TRUE(lockdl_r.verdict.detected);
    EXPECT_EQ(lockdl_r.verdict.label, "DL");
    // The built-in detector is blind to it.
    auto builtin_r = runTool(ToolKind::Builtin, prog, 5, 13);
    EXPECT_FALSE(builtin_r.verdict.detected);
}

TEST(Tool, CrashReportedAsCrash)
{
    auto r = runTool(ToolKind::GoatD1, crashProgram, 3, 17);
    EXPECT_TRUE(r.verdict.detected);
    EXPECT_EQ(r.verdict.label, "CRASH");
}

TEST(Tool, CellStrFormats)
{
    ToolCampaign c;
    c.verdict.detected = true;
    c.verdict.label = "PDL-2";
    c.firstDetectIteration = 3;
    c.iterationsRun = 3;
    EXPECT_EQ(c.cellStr(), "PDL-2 (3)");

    ToolCampaign x;
    x.iterationsRun = 1000;
    EXPECT_EQ(x.cellStr(), "X (1000)");
}

TEST(Tool, UndetectedCampaignRunsAllIterations)
{
    auto r = runTool(ToolKind::Builtin, cleanProgram, 7, 19, 0.0);
    EXPECT_FALSE(r.verdict.detected);
    EXPECT_EQ(r.iterationsRun, 7);
    EXPECT_EQ(r.firstDetectIteration, -1);
}

TEST(Engine, ReplayMatchesRecordedTrace)
{
    // Record a run of a kernel with D=2, then replay from the trace
    // metadata and expect an event-for-event match.
    const auto *kernel =
        goat::goker::KernelRegistry::instance().find("moby_28462");
    ASSERT_NE(kernel, nullptr);
    SingleRun sr = runOnce(kernel->fn, 1234, 2);
    std::string mismatch;
    EXPECT_TRUE(replayMatches(kernel->fn, sr.ect, &mismatch))
        << mismatch;
}

TEST(Engine, ReplayDetectsWrongProgram)
{
    const auto *a = goat::goker::KernelRegistry::instance().find(
        "moby_28462");
    const auto *b = goat::goker::KernelRegistry::instance().find(
        "moby_4951");
    ASSERT_TRUE(a && b);
    SingleRun sr = runOnce(a->fn, 77, 1);
    std::string mismatch;
    EXPECT_FALSE(replayMatches(b->fn, sr.ect, &mismatch));
    EXPECT_FALSE(mismatch.empty());
}
