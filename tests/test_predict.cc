/**
 * @file
 * Tests for the predictive happens-before tier (analysis/hb_predict.hh
 * + engine::confirmPredictions): blocking-bug predictions from single
 * passing traces of GoKer kernels, the predicted→confirmed round trip
 * through synthesized recipe replay, no false positives on clean
 * programs, and jobs=1 vs jobs=4 byte-identity of the merged
 * prediction output.
 */

#include <gtest/gtest.h>

#include "analysis/hb_predict.hh"
#include "campaign/campaign.hh"
#include "chan/chan.hh"
#include "goat/engine.hh"
#include "goker/registry.hh"
#include "sync/sync.hh"
#include "test_util.hh"

using namespace goat;
using namespace goat::analysis;
using namespace goat::engine;

namespace {

/**
 * Find a *passing* native-schedule trace of a kernel: prediction must
 * work from a trace in which the bug did not manifest.
 */
bool
passingTrace(const std::string &kernel, SingleRun *out, int max_seeds = 600)
{
    const auto *k = goker::KernelRegistry::instance().find(kernel);
    if (!k)
        return false;
    for (int seed = 1; seed <= max_seeds; ++seed) {
        SingleRun sr = runOnce(k->fn, seed, 0);
        if (!sr.dl.buggy() &&
            sr.exec.outcome == runtime::RunOutcome::Ok) {
            *out = std::move(sr);
            return true;
        }
    }
    return false;
}

bool
hasKind(const PredictionReport &r, PredictionKind k)
{
    for (const auto &p : r.predictions)
        if (p.kind == k)
            return true;
    return false;
}

} // namespace

TEST(Predict, LockOrderInversionFromPassingTrace)
{
    SingleRun sr;
    ASSERT_TRUE(passingTrace("cockroach_7504", &sr));
    PredictionReport r = predictBlockingBugs(sr.ect);
    ASSERT_TRUE(r.any()) << "no prediction from passing trace";
    EXPECT_TRUE(hasKind(r, PredictionKind::LockOrderInversion))
        << r.str();
}

TEST(Predict, AbbaStoreLocksFromPassingTrace)
{
    SingleRun sr;
    ASSERT_TRUE(passingTrace("cockroach_10214", &sr));
    PredictionReport r = predictBlockingBugs(sr.ect);
    EXPECT_TRUE(hasKind(r, PredictionKind::LockOrderInversion))
        << r.str();
}

TEST(Predict, LostSignalFromPassingTrace)
{
    SingleRun sr;
    ASSERT_TRUE(passingTrace("cockroach_2448", &sr));
    PredictionReport r = predictBlockingBugs(sr.ect);
    EXPECT_TRUE(hasKind(r, PredictionKind::LostSignal)) << r.str();
}

TEST(Predict, LockGatedWaitFromPassingTrace)
{
    SingleRun sr;
    ASSERT_TRUE(passingTrace("cockroach_1055", &sr));
    PredictionReport r = predictBlockingBugs(sr.ect);
    EXPECT_TRUE(hasKind(r, PredictionKind::LockGatedWait)) << r.str();
}

TEST(Predict, ConfirmRoundTripOnLockOrderInversion)
{
    // Predict from a passing iteration, confirm by synthesized-recipe
    // replay, then re-replay the confirming recipe standalone: it must
    // match its own fingerprint and still be buggy.
    const auto *k =
        goker::KernelRegistry::instance().find("cockroach_7504");
    ASSERT_NE(k, nullptr);
    GoatConfig cfg;
    cfg.delayBound = 0;
    SingleRun base;
    bool found = false;
    for (int iter = 1; iter <= 50 && !found; ++iter) {
        base = runCampaignIteration(cfg, k->fn, iter, nullptr);
        found = !base.dl.buggy() &&
                base.exec.outcome == runtime::RunOutcome::Ok;
    }
    ASSERT_TRUE(found) << "no passing iteration";

    PredictionReport r = predictBlockingBugs(base.ect);
    ASSERT_TRUE(hasKind(r, PredictionKind::LockOrderInversion));
    PredictOutcome po = confirmPredictions(k->fn, base.recipe, r);
    ASSERT_EQ(po.report.predictions.size(), r.predictions.size());
    ASSERT_GE(po.confirmedCount, 1) << po.report.str();
    EXPECT_EQ(po.confirmedCount, po.report.confirmedCount());

    int replayed = 0;
    for (size_t i = 0; i < po.report.predictions.size(); ++i) {
        const auto &p = po.report.predictions[i];
        if (!p.confirmed)
            continue;
        EXPECT_FALSE(p.confirmVerdict.empty());
        EXPECT_FALSE(p.confirmVerdict == "pass");
        ReplayResult rr = replayRecipe(k->fn, po.confirmRecipes[i]);
        EXPECT_TRUE(rr.matched) << rr.mismatch;
        EXPECT_TRUE(rr.buggy);
        ++replayed;
    }
    EXPECT_GE(replayed, 1);
}

TEST(Predict, ConfirmsAcrossKernels)
{
    // At least one auto-confirmation on each of the headline kernels.
    for (const char *name :
         {"cockroach_7504", "cockroach_10214", "cockroach_2448"}) {
        SingleRun base;
        ASSERT_TRUE(passingTrace(name, &base)) << name;
        PredictionReport r = predictBlockingBugs(base.ect);
        ASSERT_TRUE(r.any()) << name;
        const auto *k = goker::KernelRegistry::instance().find(name);
        // Standalone traces carry no recipe; build a yield-free base.
        trace::Recipe rec;
        rec.kernel = name;
        rec.seed = std::strtoull(base.ect.meta("seed").c_str(),
                                 nullptr, 10);
        rec.delayBound = 0;
        PredictOutcome po = confirmPredictions(k->fn, rec, r);
        EXPECT_GE(po.confirmedCount, 1)
            << name << "\n" << po.report.str();
    }
}

TEST(Predict, CampaignOutputByteIdenticalAcrossJobs)
{
    // The merged prediction report — including confirmations and the
    // rendered JSON document — must be byte-identical for jobs=1 and
    // jobs=4, like every other campaign artifact.
    const auto *k =
        goker::KernelRegistry::instance().find("cockroach_7504");
    ASSERT_NE(k, nullptr);
    auto run = [&](int jobs) {
        campaign::CampaignConfig ccfg;
        ccfg.engine.delayBound = 0;
        ccfg.engine.maxIterations = 8;
        ccfg.engine.stopOnBug = false;
        ccfg.engine.predict = true;
        ccfg.jobs = jobs;
        ccfg.programName = k->name;
        return campaign::runCampaign(ccfg, k->fn);
    };
    campaign::CampaignResult a = run(1);
    campaign::CampaignResult b = run(4);
    EXPECT_GE(a.predict.report.predictions.size(), 1u);
    EXPECT_GE(a.predict.confirmedCount, 1);
    EXPECT_EQ(a.predict.report.jsonDocStr(k->name),
              b.predict.report.jsonDocStr(k->name));
    EXPECT_EQ(a.predict.confirmedCount, b.predict.confirmedCount);
    ASSERT_EQ(a.predict.confirmRecipes.size(),
              b.predict.confirmRecipes.size());
    for (size_t i = 0; i < a.predict.confirmRecipes.size(); ++i)
        EXPECT_EQ(
            trace::recipeToString(a.predict.confirmRecipes[i]),
            trace::recipeToString(b.predict.confirmRecipes[i]));
}

TEST(Predict, NoFalsePositiveOnCleanProgram)
{
    // Consistent lock order, Done outside the gate lock, close ordered
    // after the send via a rendezvous: nothing to predict.
    auto rr = goat::test::runProgram([] {
        auto mu_a = std::make_shared<gosync::Mutex>();
        auto mu_b = std::make_shared<gosync::Mutex>();
        auto wg = std::make_shared<gosync::WaitGroup>();
        auto ch = std::make_shared<Chan<int>>(0);
        wg->add(1);
        go([=] {
            mu_a->lock();
            mu_b->lock();
            mu_b->unlock();
            mu_a->unlock();
            ch->send(1);
            wg->done();
        });
        mu_a->lock();
        mu_b->lock();
        mu_b->unlock();
        mu_a->unlock();
        ch->recv();
        wg->wait();
        ch->close();
    });
    PredictionReport r = predictBlockingBugs(rr.ect);
    EXPECT_FALSE(r.any()) << r.str();
}
