/**
 * @file
 * Tests for the static concurrency lint pass (staticmodel/lint.hh):
 * per-rule unit checks on synthetic sources, renderer smoke tests,
 * the GoKer corpus (seeded bugs flagged, golden-file output, clean
 * examples clean), the dynamic cross-check, and the lint→campaign
 * bridge's detection speedup over the unguided baseline.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "goker/registry.hh"
#include "staticmodel/lint.hh"
#include "trace/ect.hh"

using namespace goat;
using namespace goat::staticmodel;

namespace {

LintReport
lint(const std::string &src)
{
    return lintSource(src, "t.cc");
}

/** Ids of all findings, in rank order. */
std::vector<std::string>
ids(const LintReport &r)
{
    std::vector<std::string> out;
    for (const auto &f : r.findings)
        out.push_back(f.ruleId);
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// GL001 double-lock
// ---------------------------------------------------------------------

TEST(Lint, DoubleLockFlagged)
{
    LintReport r =
        lint("m.lock();\nm.lock();\nm.unlock();\nm.unlock();\n");
    ASSERT_EQ(r.size(), 1u);
    EXPECT_STREQ(r.findings[0].ruleId, "GL001");
    EXPECT_EQ(r.findings[0].loc.line, 2u);
    EXPECT_EQ(r.findings[0].severity, LintSeverity::Error);
    ASSERT_EQ(r.findings[0].related.size(), 1u);
    EXPECT_EQ(r.findings[0].related[0].line, 1u);
}

TEST(Lint, BalancedLockPairsClean)
{
    EXPECT_TRUE(lint("m.lock();\nm.unlock();\nm.lock();\n"
                     "m.unlock();\n")
                    .empty());
}

TEST(Lint, DistinctLocksDoNotDoubleLock)
{
    EXPECT_TRUE(
        lint("a.lock();\nb.lock();\nb.unlock();\na.unlock();\n")
            .empty());
}

TEST(Lint, TryLockDoesNotCountAsHeld)
{
    EXPECT_TRUE(
        lint("if (m.tryLock()) {\n  c.send(1);\n}\n").empty());
}

TEST(Lint, LockStateDoesNotCrossTaskRoots)
{
    // One lock() in main, one in a spawned body: two units, no
    // double-lock.
    EXPECT_TRUE(lint("m.lock();\n"
                     "go([&] {\n  m.lock();\n  m.unlock();\n});\n"
                     "m.unlock();\n")
                    .empty());
}

// ---------------------------------------------------------------------
// GL002 lock-order inversion
// ---------------------------------------------------------------------

TEST(Lint, LockOrderInversionFlagged)
{
    LintReport r = lint(
        "go([&] {\n"
        "  a.lock();\n  b.lock();\n  b.unlock();\n  a.unlock();\n"
        "});\n"
        "go([&] {\n"
        "  b.lock();\n  a.lock();\n  a.unlock();\n  b.unlock();\n"
        "});\n");
    ASSERT_EQ(r.size(), 1u);
    EXPECT_STREQ(r.findings[0].ruleId, "GL002");
    EXPECT_EQ(r.findings[0].severity, LintSeverity::Error);
}

TEST(Lint, ConsistentLockOrderClean)
{
    EXPECT_TRUE(lint("go([&] {\n"
                     "  a.lock();\n  b.lock();\n  b.unlock();\n"
                     "  a.unlock();\n"
                     "});\n"
                     "go([&] {\n"
                     "  a.lock();\n  b.lock();\n  b.unlock();\n"
                     "  a.unlock();\n"
                     "});\n")
                    .empty());
}

// ---------------------------------------------------------------------
// GL003 blocking channel op under lock
// ---------------------------------------------------------------------

TEST(Lint, SendUnderLockFlagged)
{
    LintReport r = lint("m.lock();\nc.send(1);\nm.unlock();\n");
    ASSERT_EQ(r.size(), 1u);
    EXPECT_STREQ(r.findings[0].ruleId, "GL003");
    EXPECT_EQ(r.findings[0].loc.line, 2u);
    EXPECT_EQ(r.findings[0].severity, LintSeverity::Warning);
}

TEST(Lint, RecvAfterUnlockClean)
{
    EXPECT_TRUE(lint("m.lock();\nm.unlock();\nc.recv();\n").empty());
}

TEST(Lint, SelectWithDefaultUnderLockClean)
{
    // A select with a default case cannot block.
    EXPECT_TRUE(lint("m.lock();\n"
                     "Select().onRecv<int>(c, {}).onDefault().run();\n"
                     "m.unlock();\n")
                    .empty());
}

TEST(Lint, CondWaitUnderLockClean)
{
    // cv.wait(m) releases the mutex while parked — legitimate.
    EXPECT_TRUE(lint("m.lock();\ncv.wait(m);\nm.unlock();\n").empty());
}

// ---------------------------------------------------------------------
// GL004 sequential send-then-recv self-block
// ---------------------------------------------------------------------

TEST(Lint, SendPastCapacityFlagged)
{
    LintReport r = lint(
        "Chan<int> c(1);\nc.send(1);\nc.send(2);\nc.recv();\n");
    ASSERT_EQ(r.size(), 1u);
    EXPECT_STREQ(r.findings[0].ruleId, "GL004");
    // The first send past capacity is the one that parks.
    EXPECT_EQ(r.findings[0].loc.line, 3u);
}

TEST(Lint, UnbufferedSequentialSendFlagged)
{
    LintReport r = lint("Chan<int> c;\nc.send(1);\nc.recv();\n");
    ASSERT_EQ(r.size(), 1u);
    EXPECT_STREQ(r.findings[0].ruleId, "GL004");
    EXPECT_EQ(r.findings[0].loc.line, 2u);
}

TEST(Lint, SendsWithinCapacityClean)
{
    EXPECT_TRUE(
        lint("Chan<int> c(2);\nc.send(1);\nc.send(2);\nc.recv();\n")
            .empty());
}

TEST(Lint, CrossGoroutineSendNotSelfBlock)
{
    // The recv happens in another goroutine: not a self-block.
    EXPECT_TRUE(
        lint("Chan<int> c;\ngo([c]() mutable {\n  c.recv();\n});\n"
             "c.send(1);\n")
            .empty());
}

TEST(Lint, UnknownCapacityNotFlagged)
{
    // No declaration in scope -> capacity unknown -> stay quiet.
    EXPECT_TRUE(lint("c.send(1);\nc.recv();\n").empty());
}

// ---------------------------------------------------------------------
// GL005 missing unlock
// ---------------------------------------------------------------------

TEST(Lint, ReturnWithLockHeldFlagged)
{
    LintReport r = lint(
        "void f() {\n"
        "  m.lock();\n"
        "  if (bad) {\n    return;\n  }\n"
        "  m.unlock();\n"
        "}\n");
    ASSERT_EQ(r.size(), 1u);
    EXPECT_STREQ(r.findings[0].ruleId, "GL005");
    EXPECT_EQ(r.findings[0].severity, LintSeverity::Warning);
}

TEST(Lint, LockNeverReleasedFlagged)
{
    LintReport r = lint("void f() {\n  m.lock();\n}\n");
    ASSERT_EQ(r.size(), 1u);
    EXPECT_STREQ(r.findings[0].ruleId, "GL005");
}

TEST(Lint, LockGuardReleasesOnEveryPath)
{
    EXPECT_TRUE(lint("void f() {\n"
                     "  gosync::LockGuard g(m);\n"
                     "  if (bad) {\n    return;\n  }\n"
                     "  work();\n"
                     "}\n")
                    .empty());
}

// ---------------------------------------------------------------------
// GL006 conditional return skips done()
// ---------------------------------------------------------------------

TEST(Lint, ConditionalReturnBeforeDoneFlagged)
{
    LintReport r = lint(
        "wg.add(1);\n"
        "go([&] {\n"
        "  if (cond)\n"
        "    return;\n"
        "  wg.done();\n"
        "});\n"
        "wg.wait();\n");
    ASSERT_EQ(r.size(), 1u);
    EXPECT_STREQ(r.findings[0].ruleId, "GL006");
    EXPECT_EQ(r.findings[0].severity, LintSeverity::Error);
}

TEST(Lint, UnconditionalDoneClean)
{
    EXPECT_TRUE(lint("wg.add(1);\n"
                     "go([&] {\n  work();\n  wg.done();\n});\n"
                     "wg.wait();\n")
                    .empty());
}

// ---------------------------------------------------------------------
// GL007 unbalanced add/done
// ---------------------------------------------------------------------

TEST(Lint, UnbalancedAddDoneFlagged)
{
    LintReport r = lint("wg.add(2);\n"
                        "go([&] {\n  wg.done();\n});\n"
                        "wg.wait();\n");
    ASSERT_EQ(r.size(), 1u);
    EXPECT_STREQ(r.findings[0].ruleId, "GL007");
    EXPECT_EQ(r.findings[0].severity, LintSeverity::Warning);
}

TEST(Lint, BalancedAddDoneClean)
{
    EXPECT_TRUE(lint("wg.add(1);\n"
                     "go([&] {\n  wg.done();\n});\n"
                     "wg.wait();\n")
                    .empty());
}

TEST(Lint, LoopedAddSkipsTheTally)
{
    // add() in a loop: the literal total is unknowable — stay quiet.
    EXPECT_TRUE(lint("for (int i = 0; i < n; ++i) {\n"
                     "  wg.add(1);\n"
                     "  go([&] {\n    wg.done();\n  });\n"
                     "}\n"
                     "wg.wait();\n")
                    .empty());
}

// ---------------------------------------------------------------------
// GL008 statically-racy shared access (flow-aware tier) and the
// MHP-based GL002 demotion.
// ---------------------------------------------------------------------

TEST(Lint, DoubleCloseOfNamedLambdaFlagged)
{
    // The GoKer shape: one body spawned from two sites; its close()
    // may race with the other instance's close().
    LintReport r = lint("auto worker = [st] {\n"
                        "    st->c.close();\n"
                        "};\n"
                        "go(worker);\n"
                        "go(worker);\n");
    ASSERT_EQ(r.size(), 1u);
    EXPECT_STREQ(r.findings[0].ruleId, "GL008");
    EXPECT_EQ(r.findings[0].severity, LintSeverity::Warning);
    EXPECT_EQ(r.findings[0].loc.line, 2u);
}

TEST(Lint, SendMayInterleaveWithCloseFlagged)
{
    LintReport r = lint("go([st] {\n"
                        "    st->c.send(1);\n"
                        "});\n"
                        "st->c.close();\n");
    bool hit = false;
    for (const auto &f : r.findings)
        hit = hit || std::string(f.ruleId) == "GL008";
    EXPECT_TRUE(hit) << r.textStr();
}

TEST(Lint, RacyVarAccessWithoutCommonLockFlagged)
{
    LintReport r = lint("go([st] {\n"
                        "    st->hits.update(bump);\n"
                        "});\n"
                        "st->hits.load();\n");
    ASSERT_EQ(r.size(), 1u);
    EXPECT_STREQ(r.findings[0].ruleId, "GL008");
}

TEST(Lint, CommonLockSuppressesTheRacePair)
{
    EXPECT_TRUE(lint("go([st] {\n"
                     "    st->mu.lock();\n"
                     "    st->hits.update(bump);\n"
                     "    st->mu.unlock();\n"
                     "});\n"
                     "mu.lock();\n"
                     "st->hits.load();\n"
                     "mu.unlock();\n")
                    .empty());
}

TEST(Lint, JoinOrderedAccessesAreClean)
{
    // done()/wait() orders the write before the read: not a race.
    EXPECT_TRUE(lint("go([st] {\n"
                     "    st->hits.update(bump);\n"
                     "    st->wg.done();\n"
                     "});\n"
                     "st->wg.wait();\n"
                     "st->hits.load();\n")
                    .empty());
}

TEST(Lint, ReadOnlyParallelAccessesAreClean)
{
    EXPECT_TRUE(lint("go([st] {\n"
                     "    st->hits.load();\n"
                     "});\n"
                     "st->hits.load();\n")
                    .empty());
}

TEST(Lint, SequentialLockHandoffDemotedToNote)
{
    // AB then BA entirely on one frame: a static cycle that can never
    // deadlock. The MHP refinement keeps the finding as a note.
    LintReport r = lint("a.lock();\nb.lock();\nb.unlock();\na.unlock();\n"
                        "b.lock();\na.lock();\na.unlock();\nb.unlock();\n");
    ASSERT_EQ(r.size(), 1u);
    EXPECT_STREQ(r.findings[0].ruleId, "GL002");
    EXPECT_EQ(r.findings[0].severity, LintSeverity::Note);
    EXPECT_NE(r.findings[0].message.find("flow-ordered"),
              std::string::npos);
}

TEST(Lint, ConcurrentInversionStaysAnError)
{
    LintReport r = lint("go([st] {\n"
                        "    st->a.lock();\n    st->b.lock();\n"
                        "    st->b.unlock();\n    st->a.unlock();\n"
                        "});\n"
                        "go([st] {\n"
                        "    st->b.lock();\n    st->a.lock();\n"
                        "    st->a.unlock();\n    st->b.unlock();\n"
                        "});\n");
    ASSERT_GE(r.size(), 1u);
    EXPECT_STREQ(r.findings[0].ruleId, "GL002");
    EXPECT_EQ(r.findings[0].severity, LintSeverity::Error);
}

// ---------------------------------------------------------------------
// Inline suppression and report dedup.
// ---------------------------------------------------------------------

TEST(Lint, NolintSuppressesTheNamedRule)
{
    LintReport r =
        lint("m.lock();\n"
             "m.lock(); // goat:nolint(GL001)\n"
             "m.unlock();\nm.unlock();\n");
    EXPECT_TRUE(r.empty()) << r.textStr();
    EXPECT_EQ(r.suppressed, 1u);
}

TEST(Lint, BareNolintSuppressesEveryRuleOnTheLine)
{
    LintReport r = lint("m.lock();\n"
                        "m.lock(); // goat:nolint\n"
                        "m.unlock();\nm.unlock();\n");
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.suppressed, 1u);
}

TEST(Lint, NolintForAnotherRuleKeepsTheFinding)
{
    LintReport r =
        lint("m.lock();\n"
             "m.lock(); // goat:nolint(GL003,GL008)\n"
             "m.unlock();\nm.unlock();\n");
    ASSERT_EQ(r.size(), 1u);
    EXPECT_STREQ(r.findings[0].ruleId, "GL001");
    EXPECT_EQ(r.suppressed, 0u);
}

TEST(Lint, SuppressedCountSurvivesTheRenderers)
{
    LintReport r = lint("m.lock();\n"
                        "m.lock(); // goat:nolint\n"
                        "m.unlock();\nm.unlock();\n");
    EXPECT_NE(r.jsonStr().find("\"suppressed\":1"), std::string::npos);
    EXPECT_NE(r.sarifStr().find("\"suppressed\":1"), std::string::npos);
}

TEST(Lint, DedupeDropsRepeatedRuleFileLine)
{
    LintReport r =
        lint("m.lock();\nm.lock();\nm.unlock();\nm.unlock();\n");
    ASSERT_EQ(r.size(), 1u);
    LintReport twice = r;
    twice.merge(r);
    ASSERT_EQ(twice.size(), 2u);
    twice.dedupe();
    EXPECT_EQ(twice.size(), 1u);
    EXPECT_EQ(twice.suppressed, r.suppressed * 2);
}

// ---------------------------------------------------------------------
// Report mechanics: ranking, sites, renderers.
// ---------------------------------------------------------------------

TEST(Lint, RankPutsErrorsBeforeWarnings)
{
    // A GL003 warning (line 2) and a GL001 error (line 4).
    LintReport r = lint("m.lock();\nc.send(1);\nm.unlock();\n"
                        "m.lock();\nm.lock();\nm.unlock();\n"
                        "m.unlock();\n");
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(ids(r), (std::vector<std::string>{"GL001", "GL003"}));
}

TEST(Lint, SitesDeduplicatePrimaryAndRelated)
{
    LintReport r =
        lint("m.lock();\nm.lock();\nm.unlock();\nm.unlock();\n");
    ASSERT_EQ(r.size(), 1u);
    auto sites = r.sites();
    // Primary (line 2) + related (line 1), no duplicates.
    EXPECT_EQ(sites.size(), 2u);
}

TEST(Lint, TextRendererOneLinePerFinding)
{
    LintReport r = lint("m.lock();\nm.lock();\n");
    std::string text = r.textStr();
    EXPECT_NE(text.find("t.cc:2: error: [GL001 double-lock]"),
              std::string::npos);
}

TEST(Lint, JsonRendererCarriesToolAndFindings)
{
    LintReport r = lint("m.lock();\nm.lock();\n");
    std::string json = r.jsonStr();
    EXPECT_NE(json.find("\"tool\":\"goat-lint\""), std::string::npos);
    EXPECT_NE(json.find("\"rule\":\"GL001\""), std::string::npos);
    EXPECT_NE(json.find("\"line\":2"), std::string::npos);
}

TEST(Lint, SarifRendererIsVersioned)
{
    LintReport r = lint("m.lock();\nm.lock();\n");
    std::string sarif = r.sarifStr();
    EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\":\"GL001\""), std::string::npos);
    // Every shipped rule is declared in the driver, findings or not.
    for (const LintRule &rule : lintRules())
        EXPECT_NE(sarif.find(rule.id), std::string::npos) << rule.id;
}

TEST(Lint, RuleTableIsWellFormed)
{
    std::vector<std::string> seen;
    for (const LintRule &rule : lintRules()) {
        EXPECT_TRUE(std::find(seen.begin(), seen.end(), rule.id) ==
                    seen.end())
            << rule.id;
        seen.push_back(rule.id);
        EXPECT_NE(std::string(rule.name), "");
        EXPECT_NE(std::string(rule.shortDesc), "");
    }
    EXPECT_GE(seen.size(), 5u);
}

// ---------------------------------------------------------------------
// The GoKer corpus: seeded bugs are flagged at their sites; the clean
// examples stay clean; the moby file matches its golden output.
// ---------------------------------------------------------------------

TEST(LintCorpus, SeededKernelBugsAreFlagged)
{
    using goat::goker::KernelRegistry;
    // Kernels whose seeded bug carries a static signature, with the
    // rule expected to fire inside the kernel's span.
    const std::vector<std::pair<std::string, std::string>> expect = {
        {"moby_28462", "GL003"},     {"moby_4951", "GL002"},
        {"moby_25384", "GL006"},     {"moby_36114", "GL001"},
        {"hugo_3251", "GL001"},      {"syncthing_4829", "GL003"},
        {"istio_16224", "GL003"},
    };
    for (const auto &[name, rule] : expect) {
        const auto *k = KernelRegistry::instance().find(name);
        ASSERT_NE(k, nullptr) << name;
        LintReport r = goker::kernelLintReport(*k);
        ASSERT_FALSE(r.empty()) << name;
        bool hit = false;
        for (const auto &f : r.findings)
            hit = hit || rule == f.ruleId;
        EXPECT_TRUE(hit) << name << " lacks a " << rule << " finding";
    }
}

TEST(LintCorpus, AtLeastFiveKernelsFlagged)
{
    size_t flagged = 0;
    for (const auto *k : goker::KernelRegistry::instance().all())
        if (!goker::kernelLintReport(*k).empty())
            ++flagged;
    EXPECT_GE(flagged, 5u);
}

TEST(LintCorpus, CleanExamplesLintClean)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    for (const auto &entry :
         fs::directory_iterator(GOAT_SOURCE_DIR "/examples")) {
        std::string ext = entry.path().extension().string();
        if (ext == ".cc" || ext == ".cpp")
            files.push_back(entry.path().string());
    }
    ASSERT_FALSE(files.empty());
    LintReport r = lintFiles(files);
    EXPECT_TRUE(r.empty()) << r.textStr();
}

TEST(LintCorpus, MobyFileMatchesGolden)
{
    LintReport r =
        lintFile(GOAT_SOURCE_DIR "/src/goker/kernels/goker_moby.cc");
    std::FILE *f = std::fopen(
        GOAT_SOURCE_DIR "/tests/golden/lint_goker_moby.txt", "rb");
    ASSERT_NE(f, nullptr);
    std::string golden;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        golden.append(buf, n);
    std::fclose(f);
    EXPECT_EQ(r.textStr(), golden);
}

TEST(LintCorpus, MissingFileYieldsEmptyReport)
{
    EXPECT_TRUE(lintFile("/nonexistent/zz.cc").empty());
}

// ---------------------------------------------------------------------
// Dynamic cross-check and the lint→campaign bridge.
// ---------------------------------------------------------------------

TEST(LintConfirm, ParkedGoroutineAtSiteConfirms)
{
    using namespace goat::trace;
    LintReport r;
    LintFinding f;
    f.ruleId = "GL003";
    f.rule = "chan-under-lock";
    f.loc = SourceLoc("s.cc", 2);
    f.message = "synthetic";
    r.findings.push_back(f);

    Ect ect;
    ect.append(Event(1, 0, EventType::TraceStart,
                     SourceLoc("s.cc", 1)));
    ect.append(Event(2, 0, EventType::GoCreate,
                     SourceLoc("s.cc", 1), 1));
    ect.append(Event(3, 1, EventType::GoStart, SourceLoc("s.cc", 1)));
    // g1 parks forever at the finding's site (no GoEnd).
    ect.append(Event(4, 1, EventType::GoBlockSend,
                     SourceLoc("s.cc", 2)));
    ect.append(Event(5, 0, EventType::TraceStop, SourceLoc("s.cc", 1)));
    EXPECT_EQ(confirmFindings(r, ect), 1u);
    EXPECT_TRUE(r.findings[0].confirmed);
    EXPECT_EQ(r.confirmedCount(), 1u);
}

TEST(LintConfirm, ExitedGoroutinesDoNotConfirm)
{
    using namespace goat::trace;
    LintReport r;
    LintFinding f;
    f.loc = SourceLoc("s.cc", 2);
    r.findings.push_back(f);

    Ect ect;
    ect.append(Event(1, 0, EventType::TraceStart,
                     SourceLoc("s.cc", 1)));
    ect.append(Event(2, 0, EventType::GoCreate,
                     SourceLoc("s.cc", 1), 1));
    ect.append(Event(3, 1, EventType::GoStart, SourceLoc("s.cc", 1)));
    ect.append(Event(4, 1, EventType::ChSend, SourceLoc("s.cc", 2)));
    ect.append(Event(5, 1, EventType::GoEnd, SourceLoc("s.cc", 2)));
    ect.append(Event(6, 0, EventType::TraceStop, SourceLoc("s.cc", 1)));
    EXPECT_EQ(confirmFindings(r, ect), 0u);
    EXPECT_FALSE(r.findings[0].confirmed);
}

namespace {

/** First-detection iteration of a campaign (0 = no bug). */
int
detectionIteration(const goat::goker::KernelInfo &kernel, uint64_t seed,
                   bool lint_guided)
{
    campaign::CampaignConfig ccfg;
    ccfg.engine.delayBound = 2;
    ccfg.engine.maxIterations = 100;
    ccfg.engine.seedBase = seed;
    ccfg.engine.staticModel = goker::kernelCuTable(kernel);
    if (lint_guided) {
        ccfg.lint = goker::kernelLintReport(kernel);
        ccfg.lintBridge = true;
        ccfg.engine.prioritySites = ccfg.lint.sites();
    }
    auto cres = campaign::runCampaign(ccfg, kernel.fn);
    return cres.merged.bugFound ? cres.merged.bugIteration : 0;
}

} // namespace

TEST(LintBridge, CampaignConfirmsTheStaticFinding)
{
    const auto *k =
        goker::KernelRegistry::instance().find("moby_28462");
    ASSERT_NE(k, nullptr);
    campaign::CampaignConfig ccfg;
    ccfg.engine.delayBound = 2;
    ccfg.engine.maxIterations = 100;
    ccfg.engine.seedBase = 1;
    ccfg.engine.staticModel = goker::kernelCuTable(*k);
    ccfg.lint = goker::kernelLintReport(*k);
    ccfg.lintBridge = true;
    ccfg.engine.prioritySites = ccfg.lint.sites();
    ASSERT_FALSE(ccfg.lint.empty());
    auto cres = campaign::runCampaign(ccfg, k->fn);
    ASSERT_TRUE(cres.merged.bugFound);
    // The GL003 send-under-lock site is where the monitor parks: the
    // dynamic cross-check must confirm it.
    EXPECT_GE(cres.confirmedWarnings, 1);
    EXPECT_EQ(static_cast<size_t>(cres.confirmedWarnings),
              cres.lint.confirmedCount());
}

TEST(LintBridge, GuidedBeatsUnguidedOnFlaggedKernel)
{
    // The acceptance experiment: over a fixed seed set, seeding the
    // perturber with the lint sites must reduce the total iterations
    // to first detection, with at least one strict per-seed win (and
    // possibly individual losses — guidance is probabilistic).
    const auto *k =
        goker::KernelRegistry::instance().find("moby_28462");
    ASSERT_NE(k, nullptr);
    int guided_total = 0, unguided_total = 0, strict_wins = 0;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        int g = detectionIteration(*k, seed, true);
        int u = detectionIteration(*k, seed, false);
        ASSERT_GT(g, 0) << "guided missed the bug at seed " << seed;
        ASSERT_GT(u, 0) << "unguided missed the bug at seed " << seed;
        guided_total += g;
        unguided_total += u;
        if (g < u)
            ++strict_wins;
    }
    EXPECT_LT(guided_total, unguided_total);
    EXPECT_GE(strict_wins, 1);
}
