/**
 * @file
 * Integration tests: realistic mini-applications built on the full API
 * surface (channels + select + sync + ctx + timers together), each
 * verified end-to-end for functional correctness, clean termination
 * under GoAT testing campaigns, and well-formed traces. These play the
 * role of GoBench's "GoReal" programs: whole applications rather than
 * bug kernels.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/validate.hh"
#include "chan/chan.hh"
#include "chan/select.hh"
#include "chan/time.hh"
#include "ctx/context.hh"
#include "goat/engine.hh"
#include "runtime/api.hh"
#include "sync/sync.hh"
#include "test_util.hh"

using namespace goat;
using goat::test::runProgram;

namespace {

// ---------------------------------------------------------------------
// Mini-app 1: a replicated key-value store (etcd-flavoured). A leader
// serializes writes through a proposal channel; follower replicas
// apply them; reads go through a RWMutex-protected local store.
// ---------------------------------------------------------------------

struct KvStore
{
    struct Proposal
    {
        int key = 0;
        int value = 0;
    };

    gosync::RWMutex mu;
    std::map<int, int> data;
    Chan<Proposal> proposals;
    Chan<Unit> stop;
    gosync::WaitGroup replicas;

    KvStore() : proposals(8), stop(0) {}
};

void
kvApp(int writers, int writes_each, std::map<int, int> *final_state)
{
    auto kv = std::make_shared<KvStore>();
    const int n_replicas = 2;
    kv->replicas.add(n_replicas);

    // Appliers: drain the proposal log into the store.
    for (int r = 0; r < n_replicas; ++r) {
        goNamed("applier", [kv] {
            while (true) {
                bool stopping = false;
                Select()
                    .onRecv<KvStore::Proposal>(
                        kv->proposals,
                        [&](KvStore::Proposal p, bool ok) {
                            if (!ok)
                                return;
                            kv->mu.lock();
                            // Versioned last-writer-wins: two appliers
                            // may drain the FIFO log out of order, so
                            // stale proposals must not clobber newer
                            // state.
                            auto it = kv->data.find(p.key);
                            if (it == kv->data.end() ||
                                it->second < p.value)
                                kv->data[p.key] = p.value;
                            kv->mu.unlock();
                        })
                    .onRecv<Unit>(kv->stop,
                                  [&](Unit, bool) { stopping = true; })
                    .run();
                if (stopping)
                    break;
            }
            kv->replicas.done();
        });
    }

    // Writers: propose writes, occasionally read back.
    gosync::WaitGroup writers_wg;
    writers_wg.add(writers);
    for (int w = 0; w < writers; ++w) {
        goNamed("writer", [kv, &writers_wg, w, writes_each] {
            for (int i = 0; i < writes_each; ++i) {
                kv->proposals.send({w, i});
                kv->mu.rlock();
                (void)kv->data.size();
                kv->mu.runlock();
            }
            writers_wg.done();
        });
    }

    writers_wg.wait();
    // Drain: wait until all proposals applied, then stop the appliers.
    while (kv->proposals.len() > 0)
        yield();
    kv->stop.close();
    kv->replicas.wait();
    kv->mu.rlock();
    *final_state = kv->data;
    kv->mu.runlock();
}

// ---------------------------------------------------------------------
// Mini-app 2: a request router with per-request timeouts and context
// cancellation (grpc-flavoured).
// ---------------------------------------------------------------------

struct Router
{
    Chan<int> requests;
    Chan<std::string> responses;
    Router() : requests(0), responses(0) {}
};

void
routerApp(int requests, int *answered, int *timed_out)
{
    auto rt = std::make_shared<Router>();
    auto [app_ctx, cancel_app] = ctx::withCancel(ctx::background());

    goNamed("backend", [rt, app_ctx = app_ctx] {
        while (true) {
            int req = -1;
            bool stop = false;
            Select()
                .onRecv<int>(rt->requests,
                             [&](int r, bool ok) {
                                 if (ok)
                                     req = r;
                                 else
                                     stop = true;
                             })
                .onRecv<Unit>(app_ctx->done(),
                              [&](Unit, bool) { stop = true; })
                .run();
            if (stop)
                return;
            // Slow requests (odd ids) exceed the caller's deadline.
            if (req % 2 == 1)
                sleepMs(10);
            bool delivered = false;
            Select()
                .onSend(rt->responses, std::string("ok"),
                        [&] { delivered = true; })
                .onRecv<Unit>(app_ctx->done(), {})
                .run();
            if (!delivered)
                return;
        }
    });

    for (int r = 0; r < requests; ++r) {
        rt->requests.send(r);
        auto deadline = gotime::after(5 * gotime::Millisecond);
        bool got = false;
        Select()
            .onRecv<std::string>(rt->responses,
                                 [&](std::string, bool) { got = true; })
            .onRecv<Unit>(deadline, {})
            .run();
        if (got) {
            ++*answered;
        } else {
            ++*timed_out;
            // Drain the late response so the backend can move on.
            rt->responses.recvOk();
        }
    }
    cancel_app();
    yield();
}

} // namespace

TEST(Integration, KvStoreAppliesAllWrites)
{
    std::map<int, int> state;
    auto rr = runProgram([&] { kvApp(3, 5, &state); });
    EXPECT_EQ(rr.exec.outcome, runtime::RunOutcome::Ok);
    EXPECT_TRUE(rr.exec.leaked.empty());
    ASSERT_EQ(state.size(), 3u);
    for (int w = 0; w < 3; ++w)
        EXPECT_EQ(state[w], 4); // last write per writer wins
}

TEST(Integration, KvStoreCleanUnderNoiseSweep)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        std::map<int, int> state;
        auto rr = runProgram([&] { kvApp(2, 4, &state); }, seed, 0.1);
        EXPECT_EQ(rr.exec.outcome, runtime::RunOutcome::Ok)
            << "seed " << seed;
        EXPECT_TRUE(rr.exec.leaked.empty()) << "seed " << seed;
        auto v = analysis::validateEct(rr.ect);
        EXPECT_TRUE(v.ok()) << v.str();
    }
}

TEST(Integration, KvStoreSurvivesGoatCampaign)
{
    engine::GoatConfig cfg;
    cfg.delayBound = 3;
    cfg.maxIterations = 30;
    engine::GoatEngine eng(cfg);
    auto result = eng.run([] {
        std::map<int, int> state;
        kvApp(2, 3, &state);
    });
    EXPECT_FALSE(result.bugFound)
        << (result.report.empty() ? "?" : result.report);
}

TEST(Integration, RouterAnswersAndTimesOutAsExpected)
{
    int answered = 0, timed_out = 0;
    auto rr = runProgram([&] { routerApp(6, &answered, &timed_out); });
    EXPECT_EQ(rr.exec.outcome, runtime::RunOutcome::Ok);
    // Even ids answer fast, odd ids exceed the 5 ms deadline.
    EXPECT_EQ(answered, 3);
    EXPECT_EQ(timed_out, 3);
    EXPECT_TRUE(rr.exec.leaked.empty());
}

TEST(Integration, RouterCleanUnderGoatCampaign)
{
    engine::GoatConfig cfg;
    cfg.delayBound = 2;
    cfg.maxIterations = 25;
    engine::GoatEngine eng(cfg);
    auto result = eng.run([] {
        int a = 0, t = 0;
        routerApp(4, &a, &t);
    });
    EXPECT_FALSE(result.bugFound)
        << (result.report.empty() ? "?" : result.report);
}

TEST(Integration, RouterWithoutDrainLeaksBackend)
{
    // Regression-style negative test: dropping the late-response drain
    // makes the backend leak on its response send, and GoAT sees it.
    auto buggy = [] {
        auto rt = std::make_shared<Router>();
        goNamed("backend", [rt] {
            rt->requests.recv();
            sleepMs(10);
            rt->responses.send("late"); // caller gave up: leaks
        });
        rt->requests.send(0);
        auto deadline = gotime::after(2 * gotime::Millisecond);
        Select()
            .onRecv<std::string>(rt->responses, {})
            .onRecv<Unit>(deadline, {})
            .run();
        // BUG: no drain of the late response.
    };
    engine::GoatConfig cfg;
    cfg.maxIterations = 10;
    engine::GoatEngine eng(cfg);
    auto result = eng.run(buggy);
    EXPECT_TRUE(result.bugFound);
    EXPECT_EQ(result.firstBug.verdict,
              analysis::Verdict::PartialDeadlock);
}
