/**
 * @file
 * Repro-recipe subsystem tests: recipe serialization round-trips,
 * ScheduleRecorder / ReplayPerturber decision-stream mechanics, exact
 * replay determinism across every registered GoKer kernel (byte-
 * identical ECT plus same verdict), yield-set minimization, and
 * jobs-independence of campaign recipe capture.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/deadlock.hh"
#include "campaign/campaign.hh"
#include "goat/engine.hh"
#include "goker/registry.hh"
#include "perturb/replay.hh"
#include "trace/recipe.hh"
#include "trace/serialize.hh"

using namespace goat;
using engine::GoatConfig;
using engine::runCampaignIteration;
using engine::SingleRun;
using perturb::ReplayPerturber;
using perturb::ScheduleRecorder;
using trace::Recipe;
using trace::RecipeYield;

namespace {

const goker::KernelInfo &
kernel(const std::string &name)
{
    const goker::KernelInfo *k =
        goker::KernelRegistry::instance().find(name);
    EXPECT_NE(k, nullptr) << "unknown kernel " << name;
    return *k;
}

/** Small-budget config used by the kernel-sweep tests. */
GoatConfig
sweepConfig()
{
    GoatConfig cfg;
    cfg.delayBound = 3;
    cfg.seedBase = 11;
    cfg.stepBudget = 300'000;
    return cfg;
}

/**
 * Run campaign iterations of @p program until one is buggy (or the
 * budget runs out) and return that run with a finalized recipe.
 */
SingleRun
recordOne(const GoatConfig &cfg, const std::function<void()> &program,
          int budget)
{
    SingleRun sr;
    for (int iter = 1; iter <= budget; ++iter) {
        sr = runCampaignIteration(cfg, program, iter, nullptr);
        if (sr.dl.buggy())
            break;
    }
    engine::finalizeRecipe(sr);
    return sr;
}

} // namespace

TEST(Recipe, RoundTripPreservesEveryField)
{
    Recipe r;
    r.kernel = "moby_28462";
    r.seed = 0xdeadbeefcafef00dull;
    r.delayBound = 3;
    r.noiseProb = 0.12345678901234567;
    r.stepBudget = 123456;
    r.iteration = 42;
    r.hookCalls = 99;
    r.outcome = "ok";
    r.verdict = "partial_deadlock";
    r.ectHash = 0x0123456789abcdefull;
    r.ectEvents = 777;
    r.yields = {{5, "send", "a.cc", 10}, {17, "lock", "b.cc", 20}};

    Recipe back;
    ASSERT_TRUE(trace::recipeFromString(trace::recipeToString(r), back));
    EXPECT_EQ(back.kernel, r.kernel);
    EXPECT_EQ(back.seed, r.seed);
    EXPECT_EQ(back.delayBound, r.delayBound);
    EXPECT_EQ(back.noiseProb, r.noiseProb); // %.17g: exact double
    EXPECT_EQ(back.stepBudget, r.stepBudget);
    EXPECT_EQ(back.iteration, r.iteration);
    EXPECT_EQ(back.hookCalls, r.hookCalls);
    EXPECT_EQ(back.outcome, r.outcome);
    EXPECT_EQ(back.verdict, r.verdict);
    EXPECT_EQ(back.ectHash, r.ectHash);
    EXPECT_EQ(back.ectEvents, r.ectEvents);
    ASSERT_EQ(back.yields.size(), r.yields.size());
    EXPECT_TRUE(back.yields == r.yields);

    // Serialization is canonical: round-tripping is a fixed point.
    EXPECT_EQ(trace::recipeToString(back), trace::recipeToString(r));
}

TEST(Recipe, RejectsBadMagicAndTruncatedYield)
{
    Recipe r;
    EXPECT_FALSE(trace::recipeFromString("# not-a-recipe\n", r));
    EXPECT_FALSE(trace::recipeFromString("", r));
    EXPECT_FALSE(
        trace::recipeFromString("# goat-recipe v1\nyield 5 send\n", r));
}

TEST(Recipe, SkipsUnknownKeysForForwardCompat)
{
    Recipe r;
    ASSERT_TRUE(trace::recipeFromString(
        "# goat-recipe v1\nseed 7\nfuture_key some value\n", r));
    EXPECT_EQ(r.seed, 7u);
}

TEST(ScheduleRecorder, NumbersCallsAndRecordsYieldSites)
{
    ScheduleRecorder rec;
    int n = 0;
    auto inner = [&n](staticmodel::CuKind, const SourceLoc &) {
        return ++n % 3 == 0; // yield on calls 3, 6, 9, ...
    };
    auto hook = rec.wrap(inner);
    SourceLoc loc{"dir/file.cc", 42};
    for (int i = 0; i < 7; ++i)
        hook(staticmodel::CuKind::Lock, loc);
    EXPECT_EQ(rec.calls(), 7u);
    ASSERT_EQ(rec.yields().size(), 2u);
    EXPECT_EQ(rec.yields()[0].call, 3u);
    EXPECT_EQ(rec.yields()[1].call, 6u);
    EXPECT_EQ(rec.yields()[0].kind, "lock");
    EXPECT_EQ(rec.yields()[0].file, "file.cc");
    EXPECT_EQ(rec.yields()[0].line, 42u);
}

TEST(ScheduleRecorder, NullInnerHookCountsButNeverYields)
{
    ScheduleRecorder rec;
    auto hook = rec.wrap(nullptr);
    SourceLoc loc{"f.cc", 1};
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(hook(staticmodel::CuKind::Send, loc));
    EXPECT_EQ(rec.calls(), 5u);
    EXPECT_TRUE(rec.yields().empty());
}

TEST(ReplayPerturber, FiresExactlyAtRecordedIndices)
{
    ReplayPerturber rp({2, 5});
    SourceLoc loc{"f.cc", 9};
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i)
        fired.push_back(rp.shouldYield(staticmodel::CuKind::Recv, loc));
    EXPECT_EQ(fired, (std::vector<bool>{false, true, false, false, true,
                                        false}));
    EXPECT_EQ(rp.calls(), 6u);
    ASSERT_EQ(rp.injected().size(), 2u);
    EXPECT_EQ(rp.injected()[0].call, 2u);
    EXPECT_EQ(rp.injected()[1].call, 5u);
}

TEST(ReplayPerturber, CallsOfExtractsRecipeIndices)
{
    Recipe r;
    r.yields = {{7, "lock", "a.cc", 1}, {3, "send", "b.cc", 2}};
    // Constructor sorts, so out-of-order recipes still replay.
    ReplayPerturber rp(ReplayPerturber::callsOf(r));
    SourceLoc loc{"f.cc", 1};
    std::vector<uint64_t> hits;
    for (uint64_t i = 1; i <= 8; ++i)
        if (rp.shouldYield(staticmodel::CuKind::Lock, loc))
            hits.push_back(i);
    EXPECT_EQ(hits, (std::vector<uint64_t>{3, 7}));
}

/**
 * The core guarantee: replaying a recorded run reproduces the exact
 * interleaving — byte-identical serialized ECT and the same verdict —
 * on every registered GoKer kernel. Runs that found a bug and runs
 * that did not must both replay exactly.
 */
TEST(Replay, DeterministicOnEveryKernel)
{
    GoatConfig cfg = sweepConfig();
    for (const goker::KernelInfo *k :
         goker::KernelRegistry::instance().all()) {
        SingleRun rec = recordOne(cfg, k->fn, 25);
        rec.recipe.kernel = k->name;
        engine::ReplayResult rr = engine::replayRecipe(k->fn, rec.recipe);
        EXPECT_TRUE(rr.matched) << k->name << ": " << rr.mismatch;
        EXPECT_EQ(rr.buggy, rec.dl.buggy()) << k->name;
        EXPECT_EQ(analysis::verdictName(rr.sr.dl.verdict),
                  analysis::verdictName(rec.dl.verdict))
            << k->name;
        EXPECT_EQ(trace::ectToString(rr.sr.ect),
                  trace::ectToString(rec.ect))
            << k->name << ": serialized traces differ";
    }
}

TEST(Replay, MismatchReportedOnTamperedRecipe)
{
    const goker::KernelInfo &k = kernel("cockroach_1055");
    SingleRun rec = recordOne(sweepConfig(), k.fn, 25);
    ASSERT_TRUE(rec.dl.buggy());
    Recipe tampered = rec.recipe;
    tampered.seed ^= 1; // different schedule
    engine::ReplayResult rr = engine::replayRecipe(k.fn, tampered);
    // The fingerprint (or verdict) must catch the divergence.
    EXPECT_FALSE(rr.matched);
    EXPECT_FALSE(rr.mismatch.empty());
}

TEST(Minimize, YieldSetShrinksAndStillReproduces)
{
    const goker::KernelInfo &k = kernel("cockroach_1055");
    SingleRun rec = recordOne(sweepConfig(), k.fn, 25);
    ASSERT_TRUE(rec.dl.buggy());

    engine::MinimizeResult m = engine::minimizeRecipe(k.fn, rec.recipe);
    ASSERT_TRUE(m.reproduced);
    EXPECT_LE(m.minimized.yields.size(), rec.recipe.yields.size());
    EXPECT_EQ(m.originalYields,
              static_cast<int>(rec.recipe.yields.size()));
    EXPECT_GE(m.replays, 1);
    EXPECT_EQ(m.minimized.verdict, rec.recipe.verdict);

    // The minimized recipe is itself a valid recipe: replay asserts it.
    engine::ReplayResult rr =
        engine::replayRecipe(k.fn, m.minimized);
    EXPECT_TRUE(rr.matched) << rr.mismatch;
    EXPECT_TRUE(rr.buggy);
}

TEST(Minimize, PassRecipeRefused)
{
    const goker::KernelInfo &k = kernel("cockroach_1055");
    Recipe r;
    r.seed = 1;
    r.verdict = "pass";
    engine::MinimizeResult m = engine::minimizeRecipe(k.fn, r);
    EXPECT_FALSE(m.reproduced);
    EXPECT_EQ(m.replays, 0);
}

/**
 * Campaign recipe capture is a pure function of the iteration index:
 * the serialized recipe of the first bug must be byte-identical
 * whether the campaign ran with one worker or four.
 */
TEST(CampaignRecipe, ByteIdenticalAcrossJobCounts)
{
    const goker::KernelInfo &k = kernel("cockroach_1055");
    auto run = [&](int jobs) {
        campaign::CampaignConfig cfg;
        cfg.engine.delayBound = 2;
        cfg.engine.seedBase = 7;
        cfg.engine.maxIterations = 40;
        cfg.jobs = jobs;
        cfg.programName = k.name;
        return campaign::runCampaign(cfg, k.fn);
    };
    campaign::CampaignResult a = run(1);
    campaign::CampaignResult b = run(4);
    ASSERT_TRUE(a.merged.bugFound);
    ASSERT_TRUE(b.merged.bugFound);
    EXPECT_EQ(trace::recipeToString(a.merged.firstBugRecipe),
              trace::recipeToString(b.merged.firstBugRecipe));
    EXPECT_EQ(a.merged.firstBugRecipe.kernel, k.name);
    EXPECT_NE(a.merged.firstBugRecipe.ectHash, 0u);
}
