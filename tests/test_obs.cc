/**
 * @file
 * Tests for the campaign telemetry subsystem (src/obs): metrics
 * registry semantics, histogram bucketing, snapshot/delta/JSON
 * rendering, the JSONL run ledger (standalone and engine-driven), and
 * the Chrome trace-event export of ECTs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "base/fmt.hh"
#include "chan/chan.hh"
#include "goat/engine.hh"
#include "obs/chrome_trace.hh"
#include "obs/ledger.hh"
#include "obs/metrics.hh"
#include "obs/profile.hh"
#include "obs/progress.hh"
#include "obs/saturation.hh"
#include "runtime/api.hh"

using namespace goat;
using namespace goat::obs;

namespace {

/**
 * Minimal JSON well-formedness check: balanced braces/brackets outside
 * string literals, no trailing garbage. Not a full parser — structure
 * is asserted separately via substring probes; full validation happens
 * in tools/check_ledger.py with a real parser.
 */
bool
jsonBalanced(const std::string &s)
{
    std::vector<char> stack;
    bool in_str = false, esc = false;
    for (char c : s) {
        if (in_str) {
            if (esc)
                esc = false;
            else if (c == '\\')
                esc = true;
            else if (c == '"')
                in_str = false;
            continue;
        }
        switch (c) {
          case '"':
            in_str = true;
            break;
          case '{':
          case '[':
            stack.push_back(c);
            break;
          case '}':
            if (stack.empty() || stack.back() != '{')
                return false;
            stack.pop_back();
            break;
          case ']':
            if (stack.empty() || stack.back() != '[')
                return false;
            stack.pop_back();
            break;
          default:
            break;
        }
    }
    return !in_str && stack.empty();
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

/** Deterministically leaking program (blocked sender). */
void
leakyProgram()
{
    Chan<int> c;
    go([c]() mutable { c.send(1); });
    yield();
}

} // namespace

TEST(Metrics, CounterBasics)
{
    Registry reg;
    Counter &c = reg.counter("x");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, RegistryFindOrCreateReturnsSameInstrument)
{
    Registry reg;
    Counter &a = reg.counter("same");
    Counter &b = reg.counter("same");
    EXPECT_EQ(&a, &b);
    a.inc();
    EXPECT_EQ(b.value(), 1u);

    Gauge &g1 = reg.gauge("g");
    Gauge &g2 = reg.gauge("g");
    EXPECT_EQ(&g1, &g2);

    Histogram &h1 = reg.histogram("h", {10, 20});
    // Later bounds are ignored; the first registration wins.
    Histogram &h2 = reg.histogram("h", {1, 2, 3});
    EXPECT_EQ(&h1, &h2);
    EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(Metrics, GaugeSetAddSetMax)
{
    Gauge g;
    g.set(10);
    EXPECT_EQ(g.value(), 10);
    g.add(-3);
    EXPECT_EQ(g.value(), 7);
    g.setMax(5);
    EXPECT_EQ(g.value(), 7); // not lowered
    g.setMax(12);
    EXPECT_EQ(g.value(), 12);
    g.reset();
    EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, HistogramBucketingAndOverflow)
{
    Histogram h({10, 100, 1000});
    h.observe(5);    // bucket 0 (<= 10)
    h.observe(10);   // bucket 0 (boundary is inclusive)
    h.observe(11);   // bucket 1
    h.observe(1000); // bucket 2
    h.observe(5000); // overflow
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u); // overflow bucket
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 5u + 10 + 11 + 1000 + 5000);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucketCount(3), 0u);
}

TEST(Metrics, SnapshotAndResetAll)
{
    Registry reg;
    reg.counter("a").inc(3);
    reg.gauge("g").set(-7);
    reg.histogram("h", {10}).observe(4);

    Snapshot s = reg.snapshot();
    EXPECT_EQ(s.counters.at("a"), 3u);
    EXPECT_EQ(s.gauges.at("g"), -7);
    EXPECT_EQ(s.histograms.at("h").count, 1u);
    EXPECT_EQ(s.histograms.at("h").buckets.size(), 2u);

    reg.resetAll();
    Snapshot z = reg.snapshot();
    EXPECT_EQ(z.counters.at("a"), 0u);
    EXPECT_EQ(z.gauges.at("g"), 0);
    EXPECT_EQ(z.histograms.at("h").count, 0u);
    // Registration survives the reset.
    std::vector<std::string> names = reg.names();
    EXPECT_EQ(names.size(), 3u);
}

TEST(Metrics, DeltaDropsZeroCounters)
{
    Registry reg;
    Counter &a = reg.counter("moved");
    reg.counter("idle");
    Snapshot before = reg.snapshot();
    a.inc(5);
    Snapshot delta = reg.snapshot().deltaFrom(before);
    EXPECT_EQ(delta.counters.size(), 1u);
    EXPECT_EQ(delta.counters.at("moved"), 5u);
    EXPECT_EQ(delta.counters.count("idle"), 0u);
}

TEST(Metrics, SnapshotJsonWellFormed)
{
    Registry reg;
    reg.counter("c").inc();
    reg.gauge("g").set(2);
    reg.histogram("h", {1, 10}).observe(3);
    std::string json = reg.snapshot().jsonStr();
    EXPECT_TRUE(jsonBalanced(json)) << json;
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"c\":1"), std::string::npos);
    EXPECT_NE(json.find("\"bounds\":[1,10]"), std::string::npos);
}

TEST(Metrics, JsonEscape)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(Ledger, EntryJsonShape)
{
    LedgerEntry e;
    e.iteration = 7;
    e.seed = 42;
    e.delayBound = 3;
    e.outcome = "ok";
    e.verdict = "pass";
    e.bug = true;
    e.steps = 99;
    e.coveragePct = 62.5;
    e.wallMicros = 1234;
    std::string json = ledgerEntryJson(e);
    EXPECT_TRUE(jsonBalanced(json)) << json;
    EXPECT_NE(json.find("\"iter\":7"), std::string::npos);
    EXPECT_NE(json.find("\"seed\":42"), std::string::npos);
    EXPECT_NE(json.find("\"delay_bound\":3"), std::string::npos);
    EXPECT_NE(json.find("\"outcome\":\"ok\""), std::string::npos);
    EXPECT_NE(json.find("\"verdict\":\"pass\""), std::string::npos);
    EXPECT_NE(json.find("\"bug\":true"), std::string::npos);
    EXPECT_NE(json.find("\"steps\":99"), std::string::npos);
    EXPECT_NE(json.find("\"coverage_pct\":62.5"), std::string::npos);
    EXPECT_NE(json.find("\"wall_us\":1234"), std::string::npos);
    EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
    EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(Ledger, UnmeasuredCoverageOmitted)
{
    LedgerEntry e;
    std::string json = ledgerEntryJson(e);
    EXPECT_EQ(json.find("coverage_pct"), std::string::npos) << json;
}

TEST(Ledger, DisabledWithEmptyPath)
{
    RunLedger ledger("");
    EXPECT_TRUE(ledger.ok());
    EXPECT_FALSE(ledger.enabled());
    ledger.append(LedgerEntry{});
    EXPECT_EQ(ledger.linesWritten(), 0u);
}

TEST(Ledger, WritesOneLinePerAppend)
{
    std::string path = testing::TempDir() + "/goat_obs_ledger.jsonl";
    std::remove(path.c_str());
    {
        RunLedger ledger(path);
        ASSERT_TRUE(ledger.enabled());
        for (int i = 1; i <= 3; ++i) {
            LedgerEntry e;
            e.iteration = i;
            e.outcome = "ok";
            e.verdict = "pass";
            ledger.append(e);
        }
        EXPECT_EQ(ledger.linesWritten(), 3u);
    }
    std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), 3u);
    for (const std::string &l : lines)
        EXPECT_TRUE(jsonBalanced(l)) << l;
    EXPECT_NE(lines[2].find("\"iter\":3"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Ledger, EngineWritesOneLinePerIteration)
{
    std::string path = testing::TempDir() + "/goat_obs_engine.jsonl";
    std::remove(path.c_str());
    engine::GoatConfig cfg;
    cfg.maxIterations = 4;
    cfg.stopOnBug = false;
    cfg.collectCoverage = true;
    cfg.ledgerPath = path;
    engine::GoatEngine engine(cfg);
    engine::GoatResult result = engine.run(leakyProgram);
    EXPECT_TRUE(result.bugFound);

    std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), result.iterations.size());
    for (const std::string &l : lines) {
        EXPECT_TRUE(jsonBalanced(l)) << l;
        EXPECT_NE(l.find("\"metrics\":"), std::string::npos);
        EXPECT_NE(l.find("\"coverage_pct\":"), std::string::npos);
    }
    // The leaky program deterministically leaks: every line reports it.
    EXPECT_NE(lines[0].find("\"bug\":true"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ChromeTrace, ExportsTracksBlocksAndFlows)
{
    engine::SingleRun sr = engine::runOnce(leakyProgram, /*seed=*/1);
    ASSERT_TRUE(sr.dl.buggy());
    std::string json = chromeTraceJson(sr.ect);
    EXPECT_TRUE(jsonBalanced(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // One named track per goroutine (main + leaked child).
    EXPECT_NE(json.find("\"G1 (main)\""), std::string::npos);
    EXPECT_NE(json.find("\"G2\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_sort_index\""), std::string::npos);
    // The blocked send shows as a duration event that leaks.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"leaked\":true"), std::string::npos);
    // Instant events for the non-blocking ops.
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(ChromeTrace, FlowArrowsLinkUnblockPairs)
{
    // A program with a real unblock: the child send wakes the parent
    // recv, so the export must contain an s/f flow pair.
    auto program = [] {
        Chan<int> c;
        go([c]() mutable { c.send(1); });
        c.recv();
    };
    engine::SingleRun sr = engine::runOnce(program, /*seed=*/1);
    std::string json = chromeTraceJson(sr.ect);
    EXPECT_TRUE(jsonBalanced(json)) << json;
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"wake\""), std::string::npos);
}

TEST(ChromeTrace, WriteFile)
{
    engine::SingleRun sr = engine::runOnce(leakyProgram, /*seed=*/1);
    std::string path = testing::TempDir() + "/goat_obs_trace.json";
    std::remove(path.c_str());
    EXPECT_TRUE(writeChromeTraceFile(sr.ect, path));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), chromeTraceJson(sr.ect));
    std::remove(path.c_str());
    EXPECT_FALSE(
        writeChromeTraceFile(sr.ect, "/nonexistent-dir/x.json"));
}

TEST(SchedulerMetrics, GlobalCountersAdvanceAcrossARun)
{
    Registry &reg = Registry::global();
    Snapshot before = reg.snapshot();
    engine::runOnce(leakyProgram, /*seed=*/7);
    Snapshot delta = reg.snapshot().deltaFrom(before);
    EXPECT_GE(delta.counters["sched.runs"], 1u);
    EXPECT_GE(delta.counters["sched.dispatches"], 2u);
    EXPECT_GE(delta.counters["sched.spawns"], 2u);
    EXPECT_GE(delta.counters["event.go_create"], 2u);
    EXPECT_GE(delta.counters["chan.makes"], 1u);
    EXPECT_GE(delta.counters["sched.park.chan_send"], 1u);
}

// ---------------------------------------------------------------------
// Stage profiler (obs/profile.hh).
// ---------------------------------------------------------------------

TEST(Profile, HistogramBucketsByBitWidth)
{
    StageHist h;
    h.observe(0);  // bucket 0
    h.observe(1);  // bucket 1: bit_width(1) == 1
    h.observe(2);  // bucket 2
    h.observe(3);  // bucket 2
    h.observe(4);  // bucket 3
    h.observe(1023); // bucket 10
    h.observe(1024); // bucket 11
    EXPECT_EQ(h.count, 7u);
    EXPECT_EQ(h.sum, 0u + 1 + 2 + 3 + 4 + 1023 + 1024);
    EXPECT_EQ(h.buckets[0], 1u);
    EXPECT_EQ(h.buckets[1], 1u);
    EXPECT_EQ(h.buckets[2], 2u);
    EXPECT_EQ(h.buckets[3], 1u);
    EXPECT_EQ(h.buckets[10], 1u);
    EXPECT_EQ(h.buckets[11], 1u);
    EXPECT_EQ(h.meanNs(), h.sum / 7);
}

TEST(Profile, SnapshotMergeIsCommutative)
{
    ProfileSnapshot a, b;
    a.stages[0].total = 3;
    a.stages[0].observe(5);
    b.stages[0].total = 2;
    b.stages[0].observe(9);
    b.stages[2].total = 1;

    ProfileSnapshot ab = a, ba = b;
    ab.mergeFrom(b);
    ba.mergeFrom(a);
    EXPECT_EQ(ab.jsonStr(), ba.jsonStr());
    EXPECT_EQ(ab.stages[0].total, 5u);
    EXPECT_EQ(ab.stages[0].count, 2u);
    EXPECT_EQ(ab.stages[0].sum, 14u);
}

TEST(Profile, JsonSkipsEmptyStagesAndBalances)
{
    ProfileSnapshot s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.jsonStr(), "{}");
    s.stages[static_cast<size_t>(Stage::ChanOp)].total = 4;
    s.stages[static_cast<size_t>(Stage::ChanOp)].observe(100);
    std::string j = s.jsonStr();
    EXPECT_NE(j.find("\"chan_op\""), std::string::npos);
    EXPECT_EQ(j.find("\"fiber_switch\""), std::string::npos);
    EXPECT_NE(j.find("\"buckets\""), std::string::npos);
    EXPECT_EQ(s.jsonRowStr().find("\"buckets\""), std::string::npos);
    EXPECT_TRUE(jsonBalanced(j));
    EXPECT_TRUE(jsonBalanced(s.jsonRowStr()));
}

TEST(Profile, SamplingIsCounterBasedAndDrainResetsPhase)
{
    Profiler p;
    // Entry 0 of every kSampleEvery-block is the timed one.
    for (uint64_t i = 0; i < 2 * Profiler::kSampleEvery; ++i)
        EXPECT_EQ(p.enter(Stage::ChanOp), i % Profiler::kSampleEvery == 0)
            << i;
    EXPECT_EQ(p.peek().stage(Stage::ChanOp).total,
              2 * Profiler::kSampleEvery);

    ProfileSnapshot d = p.drain();
    EXPECT_EQ(d.stage(Stage::ChanOp).total, 2 * Profiler::kSampleEvery);
    EXPECT_TRUE(p.peek().empty());
    // The sampling phase restarts after drain: the next entry is timed.
    EXPECT_TRUE(p.enter(Stage::ChanOp));
}

TEST(Profile, ScopeRecordsOnlyWithInstalledProfiler)
{
    // No installed profiler: scopes are inert.
    { ProfileScope s(Stage::TraceAppend); }

    ProfileClock prev = setProfileClock(+[]() -> uint64_t {
        thread_local uint64_t t = 100;
        return t += 13;
    });
    Profiler p;
    const uint64_t n = Profiler::kSampleEvery + 1;
    {
        ScopedProfiler install(p);
        for (uint64_t i = 0; i < n; ++i)
            ProfileScope s(Stage::TraceAppend);
    }
    setProfileClock(prev);

    const StageHist &h = p.peek().stage(Stage::TraceAppend);
    EXPECT_EQ(h.total, n);
    EXPECT_EQ(h.count, 2u); // entries 0 and kSampleEvery sampled
    EXPECT_EQ(h.sum, 26u);  // two sampled scopes, 13ns fake tick each
    EXPECT_TRUE(Profiler::current() == nullptr);
}

TEST(Profile, StageNamesAreStable)
{
    EXPECT_STREQ(stageName(Stage::FiberSwitch), "fiber_switch");
    EXPECT_STREQ(stageName(Stage::ChanOp), "chan_op");
    EXPECT_STREQ(stageName(Stage::TraceAppend), "trace_append");
    EXPECT_STREQ(stageName(Stage::PerturbDecision), "perturb_decision");
    EXPECT_STREQ(stageName(Stage::Merge), "merge");
}

// ---------------------------------------------------------------------
// Saturation series (obs/saturation.hh).
// ---------------------------------------------------------------------

TEST(Saturation, JsonlAndHtmlRenderFromCoverageFolds)
{
    engine::GoatConfig cfg;
    cfg.delayBound = 1;
    cfg.maxIterations = 3;
    cfg.stopOnBug = false;
    cfg.collectCoverage = true;
    engine::GoatEngine eng(cfg);
    engine::GoatResult res = eng.run(leakyProgram);

    ASSERT_EQ(res.saturation.samples().size(), 3u);
    std::string jl = res.saturation.jsonlStr();
    EXPECT_EQ(std::count(jl.begin(), jl.end(), '\n'), 3);
    EXPECT_NE(jl.find("\"iter\":1,"), std::string::npos);
    EXPECT_NE(jl.find("\"covered\":"), std::string::npos);
    EXPECT_NE(jl.find("\"blocked\":"), std::string::npos);

    std::string html = res.saturation.htmlStr("leaky");
    EXPECT_NE(html.find("<svg"), std::string::npos);
    EXPECT_NE(html.find("leaky"), std::string::npos);
}

TEST(Saturation, WriteFilesContractAndFailure)
{
    SaturationSeries s;
    analysis::CoverageState cov;
    s.sample(1, cov);

    std::string path = testing::TempDir() + "/goat_obs_sat.jsonl";
    std::remove(path.c_str());
    std::remove((path + ".html").c_str());
    EXPECT_TRUE(s.writeFiles(path, "t"));
    std::ifstream jl(path), html(path + ".html");
    EXPECT_TRUE(jl.good());
    EXPECT_TRUE(html.good());
    std::remove(path.c_str());
    std::remove((path + ".html").c_str());

    EXPECT_FALSE(s.writeFiles("/nonexistent-goat-dir/sat.jsonl", "t"));
}

// ---------------------------------------------------------------------
// Progress reporting (obs/progress.hh).
// ---------------------------------------------------------------------

TEST(Progress, AtomicWriteFileReplacesAndFails)
{
    std::string path = testing::TempDir() + "/goat_obs_status.json";
    EXPECT_TRUE(atomicWriteFile(path, "one"));
    EXPECT_TRUE(atomicWriteFile(path, "two"));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), "two");
    std::remove(path.c_str());
    EXPECT_FALSE(atomicWriteFile("/nonexistent-goat-dir/x.json", "z"));
}

TEST(Progress, CountersAggregateAndCoverageIsMax)
{
    ProgressCounters c;
    c.noteIteration(0, false);
    c.noteIteration(1, true);
    c.noteIteration(1, true);
    c.noteIteration(99, false); // out-of-range verdict only bumps executed
    EXPECT_EQ(c.executed.load(), 4u);
    EXPECT_EQ(c.bugs.load(), 2u);
    EXPECT_EQ(c.verdict[0].load(), 1u);
    EXPECT_EQ(c.verdict[1].load(), 2u);
    c.noteCoveragePermille(421);
    c.noteCoveragePermille(137); // lower: ignored
    EXPECT_EQ(c.coveragePermille.load(), 421u);
}

TEST(Progress, StatusJsonShapeAndFinalWrite)
{
    std::string path = testing::TempDir() + "/goat_obs_progress.json";
    std::remove(path.c_str());
    ProgressCounters counters;
    counters.noteIteration(1, true);
    counters.noteCoveragePermille(500);
    {
        ProgressConfig cfg;
        cfg.totalIterations = 10;
        cfg.label = "unit_kernel";
        cfg.statusPath = path;
        cfg.haveCoverage = true;
        ProgressReporter rep(cfg, counters);
        std::string j = rep.statusJson(/*done=*/false);
        EXPECT_TRUE(jsonBalanced(j));
        EXPECT_NE(j.find("\"kernel\":\"unit_kernel\""), std::string::npos);
        EXPECT_NE(j.find("\"running\":true"), std::string::npos);
        EXPECT_NE(j.find("\"coverage_pct\":50.0"), std::string::npos);
        EXPECT_NE(j.find("\"partial_deadlock\":1"), std::string::npos);
        rep.stop();
        EXPECT_TRUE(rep.statusOk());
    }
    // stop() leaves a final done snapshot on disk.
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_NE(buf.str().find("\"running\":false"), std::string::npos);
    EXPECT_NE(buf.str().find("\"executed\":1"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Progress, StatusFailureIsSticky)
{
    ProgressCounters counters;
    ProgressConfig cfg;
    cfg.statusPath = "/nonexistent-goat-dir/status.json";
    ProgressReporter rep(cfg, counters);
    rep.stop();
    EXPECT_FALSE(rep.statusOk());
}
