/**
 * @file
 * Tests for the campaign fault-tolerance subsystem: exit-status
 * classification and the shard-digest wire format (campaign/
 * supervisor.hh), the checkpoint serializer (campaign/checkpoint.hh),
 * and — via subprocess runs of the real binary over the hostile
 * kernels — the supervised campaign's crash/timeout/OOM triage.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>

#include "campaign/checkpoint.hh"
#include "campaign/supervisor.hh"
#include "goker/registry.hh"

using namespace goat;
using campaign::CampaignConfig;
using campaign::CheckpointData;
using campaign::ShardDigest;

namespace {

/** Encode a waitpid status for a normal exit with @p code (glibc). */
int
exitedStatus(int code)
{
    return (code & 0xff) << 8;
}

/** Encode a waitpid status for death by @p sig (glibc). */
int
signaledStatus(int sig)
{
    return sig & 0x7f;
}

/** Run the real goat binary; return its exit status (-1 on spawn fail). */
int
runGoat(const std::string &args)
{
    std::string cmd = std::string(GOAT_CLI_BIN) + " " + args +
                      " >/dev/null 2>&1";
    int rc = std::system(cmd.c_str());
    return rc < 0 ? -1 : (WIFEXITED(rc) ? WEXITSTATUS(rc) : -1);
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "goat_supervisor_" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Count ledger lines containing @p needle. */
int
countLines(const std::string &path, const std::string &needle)
{
    std::ifstream in(path);
    std::string line;
    int n = 0;
    while (std::getline(in, line))
        if (line.find(needle) != std::string::npos)
            ++n;
    return n;
}

} // namespace

// ---------------------------------------------------------------------
// classifyExitStatus
// ---------------------------------------------------------------------

TEST(ClassifyExit, CleanExitIsEmpty)
{
    EXPECT_EQ(campaign::classifyExitStatus(exitedStatus(0)), "");
}

TEST(ClassifyExit, FatalSignalsByName)
{
    EXPECT_EQ(campaign::classifyExitStatus(signaledStatus(SIGSEGV)),
              "sigsegv");
    EXPECT_EQ(campaign::classifyExitStatus(signaledStatus(SIGABRT)),
              "sigabrt");
    EXPECT_EQ(campaign::classifyExitStatus(signaledStatus(SIGBUS)),
              "sigbus");
    EXPECT_EQ(campaign::classifyExitStatus(signaledStatus(SIGILL)),
              "sigill");
    EXPECT_EQ(campaign::classifyExitStatus(signaledStatus(SIGFPE)),
              "sigfpe");
    EXPECT_EQ(campaign::classifyExitStatus(signaledStatus(SIGKILL)),
              "sigkill");
    EXPECT_EQ(campaign::classifyExitStatus(signaledStatus(SIGTERM)),
              "sigterm");
}

TEST(ClassifyExit, UnnamedSignalGetsNumber)
{
    EXPECT_EQ(campaign::classifyExitStatus(signaledStatus(SIGUSR1)),
              "signal_" + std::to_string(SIGUSR1));
}

TEST(ClassifyExit, OomMarkerExitCode)
{
    EXPECT_EQ(campaign::classifyExitStatus(exitedStatus(77)), "oom");
}

TEST(ClassifyExit, OtherNonzeroExits)
{
    EXPECT_EQ(campaign::classifyExitStatus(exitedStatus(1)), "exit_1");
    EXPECT_EQ(campaign::classifyExitStatus(exitedStatus(42)),
              "exit_42");
}

// ---------------------------------------------------------------------
// Shard-digest wire format
// ---------------------------------------------------------------------

namespace {

obs::LedgerEntry
sampleRow()
{
    obs::LedgerEntry e;
    e.iteration = 17;
    e.seed = 0x123456789abcdefULL;
    e.delayBound = 2;
    e.outcome = "ok";
    e.verdict = "pass";
    e.bug = false;
    e.steps = 431;
    e.coveragePct = 63.125;
    e.wallMicros = 184;
    e.worker = 3;
    e.workerSeq = 6;
    e.metricsJson =
        R"({"counters":{"sched.runs":1},"gauges":{},"histograms":{}})";
    return e;
}

} // namespace

TEST(ShardDigest, RoundTripsEveryField)
{
    ShardDigest d;
    d.row = sampleRow();
    d.covBitmap = "1 chan:a.cc:10 blocked\n1 chan:a.cc:10 nop\n";

    ShardDigest back;
    ASSERT_TRUE(campaign::digestFromString(campaign::digestToString(d),
                                           &back));
    EXPECT_EQ(back.row.iteration, d.row.iteration);
    EXPECT_EQ(back.row.seed, d.row.seed);
    EXPECT_EQ(back.row.delayBound, d.row.delayBound);
    EXPECT_EQ(back.row.outcome, d.row.outcome);
    EXPECT_EQ(back.row.verdict, d.row.verdict);
    EXPECT_EQ(back.row.bug, d.row.bug);
    EXPECT_EQ(back.row.steps, d.row.steps);
    EXPECT_EQ(back.row.coveragePct, d.row.coveragePct);
    EXPECT_EQ(back.row.worker, d.row.worker);
    EXPECT_EQ(back.row.workerSeq, d.row.workerSeq);
    EXPECT_EQ(back.row.metricsJson, d.row.metricsJson);
    EXPECT_EQ(back.covBitmap, d.covBitmap);
}

TEST(ShardDigest, LossFieldsSurvive)
{
    ShardDigest d;
    d.row = sampleRow();
    d.row.outcome = "crashed";
    d.row.verdict = "crash";
    d.row.bug = true;
    d.row.steps = 0;
    d.row.crashCause = "sigsegv";
    d.row.respawns = 3;

    ShardDigest back;
    ASSERT_TRUE(campaign::digestFromString(campaign::digestToString(d),
                                           &back));
    EXPECT_EQ(back.row.crashCause, "sigsegv");
    EXPECT_EQ(back.row.respawns, 3);
    EXPECT_EQ(back.row.outcome, "crashed");
    EXPECT_TRUE(back.row.bug);
}

TEST(ShardDigest, RendersIdenticalLedgerLine)
{
    // The digest must preserve everything the ledger line renders:
    // a row that crossed the pipe emits byte-identically.
    ShardDigest d;
    d.row = sampleRow();
    ShardDigest back;
    ASSERT_TRUE(campaign::digestFromString(campaign::digestToString(d),
                                           &back));
    EXPECT_EQ(obs::ledgerEntryJson(back.row),
              obs::ledgerEntryJson(d.row));
}

TEST(ShardDigest, RejectsGarbage)
{
    ShardDigest back;
    EXPECT_FALSE(campaign::digestFromString("not a digest", &back));
    EXPECT_FALSE(campaign::digestFromString("", &back));
}

// ---------------------------------------------------------------------
// Checkpoint serializer
// ---------------------------------------------------------------------

TEST(Checkpoint, RoundTripsFullState)
{
    CheckpointData d;
    d.fingerprint = "kernel=x;seed=1;d=2";
    // Rows must be contiguous from 1 through cursor (the parser
    // enforces it), so the single sample row is iteration 1.
    d.cursor = 1;
    d.executed = 131;
    d.respawns = 2;
    d.crashes = 1;
    d.timeouts = 1;
    d.bugIteration = 97;
    d.raceIteration = -1;
    d.stopped = false;
    d.covBitmap = "1 chan:a.cc:10 blocked\n";
    obs::SaturationSample s;
    s.iter = 1;
    s.covered = 41;
    s.total = 96;
    s.blocked = 12;
    s.unblocking = 15;
    s.nop = 11;
    s.blocking = 3;
    d.satSamples.push_back(s);
    d.rows.push_back(sampleRow());
    d.rows.back().iteration = 1;

    CheckpointData back;
    std::string err;
    ASSERT_TRUE(campaign::parseCheckpoint(
        campaign::checkpointToString(d), &back, &err))
        << err;
    EXPECT_EQ(back.fingerprint, d.fingerprint);
    EXPECT_EQ(back.cursor, d.cursor);
    EXPECT_EQ(back.executed, d.executed);
    EXPECT_EQ(back.respawns, d.respawns);
    EXPECT_EQ(back.crashes, d.crashes);
    EXPECT_EQ(back.timeouts, d.timeouts);
    EXPECT_EQ(back.bugIteration, d.bugIteration);
    EXPECT_EQ(back.raceIteration, d.raceIteration);
    EXPECT_EQ(back.stopped, d.stopped);
    EXPECT_EQ(back.covBitmap, d.covBitmap);
    ASSERT_EQ(back.satSamples.size(), 1u);
    EXPECT_EQ(back.satSamples[0].covered, 41u);
    EXPECT_EQ(back.satSamples[0].blocking, 3u);
    ASSERT_EQ(back.rows.size(), 1u);
    EXPECT_EQ(obs::ledgerEntryJson(back.rows[0]),
              obs::ledgerEntryJson(d.rows[0]));
}

TEST(Checkpoint, RejectsBadMagicAndTruncation)
{
    CheckpointData back;
    std::string err;
    EXPECT_FALSE(campaign::parseCheckpoint("bogus\n", &back, &err));
    EXPECT_FALSE(err.empty());

    CheckpointData d;
    d.fingerprint = "f";
    d.cursor = 1;
    d.rows.push_back(sampleRow());
    d.rows.back().iteration = 1;
    std::string text = campaign::checkpointToString(d);
    // Chop inside the row block: the contiguity check must fire.
    text.resize(text.size() / 2);
    EXPECT_FALSE(campaign::parseCheckpoint(text, &back, &err));
}

TEST(Checkpoint, FileRoundTripIsAtomicWrite)
{
    CheckpointData d;
    d.fingerprint = "f";
    d.cursor = 1;
    d.rows.push_back(sampleRow());
    d.rows.back().iteration = 1;
    std::string path = tmpPath("ck_roundtrip");
    ASSERT_TRUE(campaign::writeCheckpointFile(path, d));
    CheckpointData back;
    std::string err;
    ASSERT_TRUE(campaign::readCheckpointFile(path, &back, &err))
        << err;
    EXPECT_EQ(back.cursor, 1);
    // No tmp-file droppings next to the artifact.
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());
    std::remove(path.c_str());
}

TEST(Checkpoint, FingerprintTracksContentKnobsOnly)
{
    CampaignConfig a;
    a.programName = "k";
    a.engine.delayBound = 2;
    a.engine.maxIterations = 100;
    a.jobs = 1;
    CampaignConfig b = a;

    // Placement/budget knobs are excluded: resuming with more
    // iterations or a different worker count is legal.
    b.engine.maxIterations = 100000;
    b.jobs = 8;
    EXPECT_EQ(campaign::configFingerprint(a),
              campaign::configFingerprint(b));

    // Content knobs are included.
    b.engine.delayBound = 3;
    EXPECT_NE(campaign::configFingerprint(a),
              campaign::configFingerprint(b));
}

// ---------------------------------------------------------------------
// Hostile kernels: registry segregation
// ---------------------------------------------------------------------

TEST(HostileKernels, SegregatedFromRegularSweeps)
{
    auto &reg = goker::KernelRegistry::instance();
    auto hostile = reg.allHostile();
    ASSERT_GE(hostile.size(), 3u);
    for (const auto *k : hostile) {
        EXPECT_TRUE(k->hostile);
        // Never in the default sweep…
        for (const auto *r : reg.all())
            EXPECT_NE(r->name, k->name);
        // …but reachable by name.
        EXPECT_EQ(reg.find(k->name), k);
    }
}

// ---------------------------------------------------------------------
// Supervised campaigns over the hostile kernels (subprocess)
// ---------------------------------------------------------------------

TEST(Supervised, SegfaultsBecomeClassifiedRows)
{
    std::string ledger = tmpPath("seg.jsonl");
    std::remove(ledger.c_str());
    EXPECT_EQ(runGoat("-kernel=hostile_segfault -isolate -d=2 "
                      "-freq=12 -jobs=2 -ledger=" +
                      ledger),
              0);
    EXPECT_GE(countLines(ledger, "\"crash_cause\":\"sigsegv\""), 1);
    // Crashes must not stop the campaign: passing rows surround them.
    EXPECT_GE(countLines(ledger, "\"outcome\":\"ok\""), 1);
    std::remove(ledger.c_str());
}

TEST(Supervised, WatchdogConvertsLivelockToTimeout)
{
    std::string ledger = tmpPath("lv.jsonl");
    std::remove(ledger.c_str());
    EXPECT_EQ(runGoat("-kernel=hostile_livelock -isolate "
                      "-iter-timeout=1 -d=2 -freq=6 -jobs=2 -ledger=" +
                      ledger),
              0);
    EXPECT_GE(countLines(ledger, "\"outcome\":\"timeout\""), 1);
    std::remove(ledger.c_str());
}

TEST(Supervised, MemLimitBreachesClassifiedOom)
{
    std::string ledger = tmpPath("oom.jsonl");
    std::remove(ledger.c_str());
    EXPECT_EQ(runGoat("-kernel=hostile_oom -isolate -mem-limit=192 "
                      "-d=2 -freq=6 -jobs=2 -ledger=" +
                      ledger),
              0);
    EXPECT_GE(countLines(ledger, "\"crash_cause\":\"oom\""), 1);
    std::remove(ledger.c_str());
}

TEST(Supervised, WellBehavedKernelMatchesThreadedRun)
{
    // Same campaign, in-process vs supervised: the ledger rows modulo
    // wall clock and placement must agree — spot-checked here via the
    // deterministic seed of iteration 1 (full canonical comparison
    // lives in tools/check_ledger.py).
    std::string l1 = tmpPath("t1.jsonl");
    std::string l2 = tmpPath("t2.jsonl");
    std::remove(l1.c_str());
    std::remove(l2.c_str());
    EXPECT_EQ(runGoat("-kernel=cockroach_1055 -d=2 -freq=10 -ledger=" +
                      l1),
              0);
    EXPECT_EQ(runGoat("-kernel=cockroach_1055 -d=2 -freq=10 -isolate "
                      "-jobs=2 -ledger=" +
                      l2),
              0);
    std::string a = readFile(l1), b = readFile(l2);
    ASSERT_FALSE(a.empty());
    ASSERT_FALSE(b.empty());
    std::string seed1 = a.substr(a.find("\"seed\""), 30);
    EXPECT_NE(b.find(seed1), std::string::npos);
    EXPECT_EQ(countLines(l1, "\"bug\":true"),
              countLines(l2, "\"bug\":true"));
    std::remove(l1.c_str());
    std::remove(l2.c_str());
}

// ---------------------------------------------------------------------
// Gating matrix (subprocess exit 2)
// ---------------------------------------------------------------------

TEST(SupervisedGating, WatchdogRequiresIsolate)
{
    EXPECT_EQ(runGoat("-kernel=cockroach_1055 -d=2 -freq=5 "
                      "-iter-timeout=1"),
              2);
}

TEST(SupervisedGating, MemLimitRequiresIsolate)
{
    EXPECT_EQ(runGoat("-kernel=cockroach_1055 -d=2 -freq=5 "
                      "-mem-limit=256"),
              2);
}

TEST(SupervisedGating, HostileKernelsRequireIsolate)
{
    EXPECT_EQ(runGoat("-kernel=hostile_segfault -d=2 -freq=5"), 2);
    EXPECT_EQ(runGoat("-kernel=hostile -d=2 -freq=5"), 2);
}

TEST(SupervisedGating, IsolateRejectsInProcessOnlyModes)
{
    EXPECT_EQ(runGoat("-kernel=cockroach_1055 -d=2 -freq=5 -isolate "
                      "-race"),
              2);
    EXPECT_EQ(runGoat("-kernel=cockroach_1055 -d=2 -freq=5 -isolate "
                      "-predict"),
              2);
    EXPECT_EQ(runGoat("-kernel=cockroach_1055 -d=2 -freq=5 -isolate "
                      "-profile"),
              2);
}

TEST(SupervisedGating, CheckpointRejectsSweepsAndPredict)
{
    std::string ck = tmpPath("gate.ck");
    EXPECT_EQ(runGoat("-kernel=all -d=0 -freq=2 -checkpoint=" + ck),
              2);
    EXPECT_EQ(runGoat("-kernel=cockroach_1055 -d=2 -freq=5 -predict "
                      "-checkpoint=" +
                      ck),
              2);
}
