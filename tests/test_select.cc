/**
 * @file
 * Unit tests for the select statement: default case, uniform choice
 * among ready cases, blocking select wake-up via send/recv/close,
 * multi-case registration and eager dequeue, send-on-closed panics,
 * and the SelectBegin/Case/End trace protocol.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "chan/chan.hh"
#include "chan/select.hh"
#include "chan/time.hh"
#include "test_util.hh"

using namespace goat;
using namespace goat::runtime;
using goat::test::countEvents;
using goat::test::runProgram;

TEST(Select, DefaultTakenWhenNothingReady)
{
    int chosen = -2;
    bool def = false;
    auto rr = runProgram([&] {
        Chan<int> c;
        chosen = Select()
                     .onRecv<int>(c, {})
                     .onDefault([&] { def = true; })
                     .run();
    });
    EXPECT_EQ(chosen, -1);
    EXPECT_TRUE(def);
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Ok);
}

TEST(Select, ReadyRecvCasePreferredOverDefault)
{
    int got = 0;
    auto rr = runProgram([&] {
        Chan<int> c(1);
        c.send(5);
        int chosen = Select()
                         .onRecv<int>(c, [&](int v, bool) { got = v; })
                         .onDefault()
                         .run();
        EXPECT_EQ(chosen, 0);
    });
    EXPECT_EQ(got, 5);
}

TEST(Select, ReadySendCaseExecutes)
{
    auto rr = runProgram([&] {
        Chan<int> c(1);
        int chosen = Select().onSend(c, 9).run();
        EXPECT_EQ(chosen, 0);
        EXPECT_EQ(c.recv(), 9);
    });
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Ok);
}

TEST(Select, BlocksUntilSenderArrives)
{
    int got = 0;
    auto rr = runProgram([&] {
        Chan<int> c;
        go([&, c]() mutable {
            yield();
            c.send(11);
        });
        int chosen =
            Select().onRecv<int>(c, [&](int v, bool) { got = v; }).run();
        EXPECT_EQ(chosen, 0);
        yield();
    });
    EXPECT_EQ(got, 11);
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Ok);
}

TEST(Select, BlocksUntilReceiverArrivesOnSendCase)
{
    auto rr = runProgram([&] {
        Chan<int> c;
        int got = 0;
        go([&, c]() mutable {
            yield();
            got = c.recv();
        });
        int chosen = Select().onSend(c, 21).run();
        EXPECT_EQ(chosen, 0);
        yield();
        EXPECT_EQ(got, 21);
    });
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Ok);
}

TEST(Select, CloseWakesBlockedSelectWithOkFalse)
{
    bool got_ok = true;
    auto rr = runProgram([&] {
        Chan<int> c;
        go([&, c]() mutable {
            yield();
            c.close();
        });
        Select().onRecv<int>(c, [&](int, bool ok) { got_ok = ok; }).run();
        yield();
    });
    EXPECT_FALSE(got_ok);
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Ok);
}

TEST(Select, SendCaseOnClosedChannelPanics)
{
    auto rr = runProgram([&] {
        Chan<int> c;
        c.close();
        Select().onSend(c, 1).run();
    });
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Crash);
    EXPECT_EQ(rr.exec.panicMsg, "send on closed channel");
}

TEST(Select, ParkedSendCaseWokenByClosePanics)
{
    auto rr = runProgram([&] {
        Chan<int> c;
        go([&, c]() mutable {
            yield();
            c.close();
        });
        Select().onSend(c, 1).run(); // parks, then close wakes → panic
    });
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Crash);
    EXPECT_EQ(rr.exec.panicMsg, "send on closed channel");
}

TEST(Select, ChoiceAmongReadyCasesIsRandomized)
{
    // Two ready receive cases: across seeds, both must get picked.
    std::set<int> chosen_set;
    for (uint64_t seed = 0; seed < 20; ++seed) {
        runProgram(
            [&] {
                Chan<int> a(1), b(1);
                a.send(1);
                b.send(2);
                int chosen = Select()
                                 .onRecv<int>(a, {})
                                 .onRecv<int>(b, {})
                                 .run();
                chosen_set.insert(chosen);
            },
            seed);
    }
    EXPECT_EQ(chosen_set, (std::set<int>{0, 1}));
}

TEST(Select, ChoiceIsRoughlyUniform)
{
    std::map<int, int> counts;
    for (uint64_t seed = 0; seed < 400; ++seed) {
        runProgram(
            [&] {
                Chan<int> a(1), b(1), c(1);
                a.send(1);
                b.send(2);
                c.send(3);
                int chosen = Select()
                                 .onRecv<int>(a, {})
                                 .onRecv<int>(b, {})
                                 .onRecv<int>(c, {})
                                 .run();
                counts[chosen]++;
            },
            seed);
    }
    for (int i = 0; i < 3; ++i) {
        EXPECT_GT(counts[i], 70);
        EXPECT_LT(counts[i], 200);
    }
}

TEST(Select, FirstWakerWinsWhenParkedOnManyChannels)
{
    int chosen = -2;
    auto rr = runProgram([&] {
        Chan<int> a, b;
        go([&, b]() mutable {
            yield();
            b.send(99); // case 1 completes first
        });
        int got = 0;
        chosen = Select()
                     .onRecv<int>(a, [&](int v, bool) { got = v; })
                     .onRecv<int>(b, [&](int v, bool) { got = v; })
                     .run();
        EXPECT_EQ(got, 99);
        yield();
        // The waiter on channel a must have been dequeued: a send on a
        // would otherwise "deliver" to the finished select.
        go([&, a]() mutable { a.send(1); });
        yield();
        EXPECT_EQ(a.recv(), 1);
    });
    EXPECT_EQ(chosen, 1);
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Ok);
}

TEST(Select, TwoCasesOnSameChannelCloseDecidesOnce)
{
    int body_runs = 0;
    auto rr = runProgram([&] {
        Chan<int> c;
        go([&, c]() mutable {
            yield();
            c.close();
        });
        Select()
            .onRecv<int>(c, [&](int, bool) { ++body_runs; })
            .onRecv<int>(c, [&](int, bool) { ++body_runs; })
            .run();
        yield();
    });
    EXPECT_EQ(body_runs, 1);
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Ok);
}

TEST(Select, EmptySelectBlocksForever)
{
    auto rr = runProgram([&] { Select().run(); });
    EXPECT_EQ(rr.exec.outcome, RunOutcome::GlobalDeadlock);
}

TEST(Select, NoDefaultNoPeerGlobalDeadlock)
{
    auto rr = runProgram([&] {
        Chan<int> c;
        Select().onRecv<int>(c, {}).run();
    });
    EXPECT_EQ(rr.exec.outcome, RunOutcome::GlobalDeadlock);
}

TEST(Select, WithTimeAfterTimeout)
{
    bool timed_out = false;
    auto rr = runProgram([&] {
        Chan<int> c;
        auto t = gotime::after(10 * gotime::Millisecond);
        Select()
            .onRecv<int>(c, {})
            .onRecv<Unit>(t, [&](Unit, bool) { timed_out = true; })
            .run();
    });
    EXPECT_TRUE(timed_out);
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Ok);
}

TEST(Select, TraceProtocolEmitted)
{
    auto rr = runProgram([&] {
        Chan<int> a(1);
        a.send(1);
        Select().onRecv<int>(a, {}).onDefault().run();
    });
    EXPECT_EQ(countEvents(rr.ect, trace::EventType::SelectBegin), 1u);
    EXPECT_EQ(countEvents(rr.ect, trace::EventType::SelectCase), 1u);
    EXPECT_EQ(countEvents(rr.ect, trace::EventType::SelectEnd), 1u);
    // SelectEnd must carry the chosen index 0 (ready recv wins over
    // default) and blockedFirst = 0.
    for (const auto &ev : rr.ect.events()) {
        if (ev.type == trace::EventType::SelectEnd) {
            EXPECT_EQ(ev.args[0], 0);
            EXPECT_EQ(ev.args[1], 0);
        }
    }
}

TEST(Select, DefaultEndEventUsesMinusOne)
{
    auto rr = runProgram([&] {
        Chan<int> c;
        Select().onRecv<int>(c, {}).onDefault().run();
    });
    bool found = false;
    for (const auto &ev : rr.ect.events()) {
        if (ev.type == trace::EventType::SelectEnd) {
            EXPECT_EQ(ev.args[0], -1);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Select, BlockedSelectEndHasBlockedFlag)
{
    auto rr = runProgram([&] {
        Chan<int> c;
        go([&, c]() mutable {
            yield();
            c.send(1);
        });
        Select().onRecv<int>(c, {}).run();
        yield();
    });
    bool found = false;
    for (const auto &ev : rr.ect.events()) {
        if (ev.type == trace::EventType::SelectEnd) {
            EXPECT_EQ(ev.args[1], 1); // blocked first
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Select, NestedSelectsInLoop)
{
    // A monitor loop draining two producers, Go-style.
    int total = 0;
    auto rr = runProgram([&] {
        Chan<int> a(4), b(4);
        Chan<Unit> done;
        go([&, a]() mutable {
            for (int i = 0; i < 3; ++i)
                a.send(1);
        });
        go([&, b]() mutable {
            for (int i = 0; i < 3; ++i)
                b.send(1);
        });
        go([&, done]() mutable {
            sleepMs(10);
            done.close();
        });
        bool stop = false;
        while (!stop) {
            Select()
                .onRecv<int>(a, [&](int v, bool ok) { total += ok ? v : 0; })
                .onRecv<int>(b, [&](int v, bool ok) { total += ok ? v : 0; })
                .onRecv<Unit>(done, [&](Unit, bool) { stop = true; })
                .run();
        }
    });
    EXPECT_EQ(total, 6);
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Ok);
}
