/**
 * @file
 * Unit tests for the schedule-perturbation policy: yield bound D is
 * honored, D=0 injects nothing, decisions are deterministic per seed,
 * and perturbation changes real program interleavings (the paper's
 * bug-acceleration mechanism).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "chan/chan.hh"
#include "perturb/perturb.hh"
#include "test_util.hh"

using namespace goat;
using namespace goat::runtime;
using goat::test::countEvents;

namespace {

/** Run a program with a given perturbation bound and seed. */
goat::test::RunResult
runPerturbed(std::function<void()> fn, int bound, uint64_t seed,
             double noise = 0.0)
{
    SchedConfig cfg;
    cfg.seed = seed;
    cfg.noiseProb = noise;
    perturb::YieldPerturber yp(bound, seed);
    cfg.perturb = yp.hook();
    Scheduler sched(cfg);
    trace::EctRecorder rec;
    sched.addSink(&rec);
    goat::test::RunResult rr;
    rr.exec = sched.run(std::move(fn));
    rr.ect = rec.ect();
    return rr;
}

/** A program with many CU points. */
void
busyProgram()
{
    Chan<int> c(64);
    for (int i = 0; i < 30; ++i)
        c.send(i);
    for (int i = 0; i < 30; ++i)
        c.recv();
}

size_t
countPerturbYields(const trace::Ect &ect)
{
    size_t n = 0;
    for (const auto &ev : ect.events())
        if (ev.type == trace::EventType::GoPreempt &&
            ev.args[0] == trace::PreemptTagPerturb)
            ++n;
    return n;
}

} // namespace

TEST(Perturb, BoundZeroInjectsNothing)
{
    for (uint64_t seed = 0; seed < 10; ++seed) {
        auto rr = runPerturbed(busyProgram, 0, seed);
        EXPECT_EQ(countPerturbYields(rr.ect), 0u);
    }
}

TEST(Perturb, NeverExceedsBound)
{
    for (int bound : {1, 2, 3, 4}) {
        for (uint64_t seed = 0; seed < 20; ++seed) {
            auto rr = runPerturbed(busyProgram, bound, seed);
            EXPECT_LE(countPerturbYields(rr.ect),
                      static_cast<size_t>(bound));
        }
    }
}

TEST(Perturb, EventuallyUsesFullBudgetOnLongPrograms)
{
    // With 60 CU points and p=0.25, some seed must consume all yields.
    bool saw_full = false;
    for (uint64_t seed = 0; seed < 20 && !saw_full; ++seed) {
        auto rr = runPerturbed(busyProgram, 3, seed);
        if (countPerturbYields(rr.ect) == 3)
            saw_full = true;
    }
    EXPECT_TRUE(saw_full);
}

TEST(Perturb, DeterministicPerSeed)
{
    auto a = runPerturbed(busyProgram, 3, 99);
    auto b = runPerturbed(busyProgram, 3, 99);
    ASSERT_EQ(a.ect.size(), b.ect.size());
    for (size_t i = 0; i < a.ect.size(); ++i)
        EXPECT_EQ(a.ect.events()[i].type, b.ect.events()[i].type);
}

TEST(Perturb, ShouldYieldCountsUsage)
{
    perturb::YieldPerturber yp(2, 7, 1.0); // always yield until bound
    SourceLoc loc = SourceLoc::current();
    EXPECT_TRUE(yp.shouldYield(staticmodel::CuKind::Send, loc));
    EXPECT_TRUE(yp.shouldYield(staticmodel::CuKind::Send, loc));
    EXPECT_FALSE(yp.shouldYield(staticmodel::CuKind::Send, loc));
    EXPECT_EQ(yp.used(), 2);
}

TEST(Perturb, ChangesInterleavings)
{
    // Two goroutines appending markers around channel ops: with
    // perturbation the interleaving set grows beyond the native one.
    auto program = [](std::string *shape) {
        return [shape] {
            Chan<int> c(8);
            go([shape, c]() mutable {
                for (int i = 0; i < 4; ++i) {
                    c.send(i);
                    *shape += 'a';
                }
            });
            go([shape, c]() mutable {
                for (int i = 0; i < 4; ++i) {
                    c.send(i);
                    *shape += 'b';
                }
            });
            for (int i = 0; i < 10; ++i)
                yield();
        };
    };

    std::set<std::string> native, perturbed;
    for (uint64_t seed = 0; seed < 25; ++seed) {
        std::string s1, s2;
        runPerturbed(program(&s1), 0, seed);
        native.insert(s1);
        runPerturbed(program(&s2), 3, seed);
        perturbed.insert(s2);
    }
    // Native (deterministic, no noise) always produces one shape.
    EXPECT_EQ(native.size(), 1u);
    EXPECT_GT(perturbed.size(), 1u);
}

TEST(Perturb, IndependentOfSchedulerRngStream)
{
    // The same scheduler seed with different bounds must still replay
    // the same select choices: the perturber uses its own stream.
    auto a = runPerturbed(busyProgram, 0, 5);
    auto b = runPerturbed(busyProgram, 0, 5);
    EXPECT_EQ(a.ect.size(), b.ect.size());
}
