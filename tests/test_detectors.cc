/**
 * @file
 * Unit tests for the baseline detectors: the built-in global-deadlock
 * check, goleak's main-exit leak check, and LockDL's double-lock,
 * circular-wait, and lock-order warnings — including the blind spots
 * that differentiate them in the paper's evaluation.
 */

#include <gtest/gtest.h>

#include "chan/chan.hh"
#include "detectors/builtin.hh"
#include "detectors/goleak.hh"
#include "detectors/lockdl.hh"
#include "sync/sync.hh"
#include "test_util.hh"

using namespace goat;
using namespace goat::runtime;
using namespace goat::detectors;

namespace {

/** Run a program with a LockDL monitor attached. */
std::pair<ExecResult, bool>
runWithLockdl(std::function<void()> fn, uint64_t seed = 1)
{
    SchedConfig cfg;
    cfg.seed = seed;
    cfg.noiseProb = 0.0;
    Scheduler sched(cfg);
    LockDL dl;
    sched.addSink(&dl);
    ExecResult res = sched.run(std::move(fn));
    return {res, dl.detected()};
}

} // namespace

TEST(Builtin, FiresOnGlobalDeadlock)
{
    auto rr = goat::test::runProgram([] {
        Chan<int> c;
        c.recv();
    });
    auto err = builtinCheck(rr.exec);
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("all goroutines are asleep"), std::string::npos);
}

TEST(Builtin, BlindToPartialDeadlock)
{
    auto rr = goat::test::runProgram([] {
        Chan<int> c;
        go([c]() mutable { c.recv(); }); // leaks
        yield();
    });
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Ok);
    EXPECT_FALSE(builtinCheck(rr.exec).has_value());
}

TEST(Goleak, DetectsLeakAtMainExit)
{
    auto rr = goat::test::runProgram([] {
        Chan<int> c;
        goNamed("leaker", [c]() mutable { c.recv(); });
        yield();
    });
    auto gl = goleakCheck(rr.exec);
    EXPECT_TRUE(gl.ran);
    ASSERT_TRUE(gl.detected());
    EXPECT_NE(gl.leaks[0].find("leaker"), std::string::npos);
    EXPECT_NE(gl.leaks[0].find("chan recv"), std::string::npos);
}

TEST(Goleak, PassesOnCleanExit)
{
    auto rr = goat::test::runProgram([] {
        go([] {});
        yield();
    });
    auto gl = goleakCheck(rr.exec);
    EXPECT_TRUE(gl.ran);
    EXPECT_FALSE(gl.detected());
}

TEST(Goleak, CannotRunWhenMainDeadlocks)
{
    auto rr = goat::test::runProgram([] {
        Chan<int> c;
        c.recv();
    });
    auto gl = goleakCheck(rr.exec);
    EXPECT_FALSE(gl.ran);
    EXPECT_FALSE(gl.detected());
}

TEST(LockDL, DetectsDoubleLock)
{
    auto [res, detected] = runWithLockdl([] {
        gosync::Mutex m;
        m.lock();
        m.lock();
    });
    EXPECT_TRUE(detected);
    EXPECT_EQ(res.outcome, RunOutcome::GlobalDeadlock);
}

TEST(LockDL, DetectsActualAbBaCycle)
{
    // Force the AB-BA interleaving with explicit yields.
    auto [res, detected] = runWithLockdl([] {
        auto a = std::make_shared<gosync::Mutex>();
        auto b = std::make_shared<gosync::Mutex>();
        go([a, b] {
            a->lock();
            yield();
            b->lock();
            b->unlock();
            a->unlock();
        });
        go([a, b] {
            b->lock();
            yield();
            a->lock();
            a->unlock();
            b->unlock();
        });
        sleepMs(10);
    });
    EXPECT_TRUE(detected);
}

TEST(LockDL, OrderGraphWarnsWithoutActualDeadlock)
{
    // Inconsistent order taken sequentially (never concurrently): the
    // Goodlock order graph still flags the potential deadlock.
    auto [res, detected] = runWithLockdl([] {
        gosync::Mutex a, b;
        a.lock();
        b.lock();
        b.unlock();
        a.unlock();
        b.lock();
        a.lock();
        a.unlock();
        b.unlock();
    });
    EXPECT_EQ(res.outcome, RunOutcome::Ok);
    EXPECT_TRUE(detected);
}

TEST(LockDL, BlindToChannelDeadlock)
{
    auto [res, detected] = runWithLockdl([] {
        Chan<int> c;
        go([c]() mutable { c.send(1); }); // leaks: no receiver
        yield();
    });
    EXPECT_FALSE(detected);
    EXPECT_EQ(res.outcome, RunOutcome::Ok);
}

TEST(LockDL, BlindToMixedChannelLockCycleWithoutOrderViolation)
{
    // One goroutine holds the only mutex and parks on a send; the peer
    // blocks on the mutex. No second lock, no order cycle: LockDL sees
    // nothing even though both goroutines leak.
    auto [res, detected] = runWithLockdl([] {
        auto mu = std::make_shared<gosync::Mutex>();
        auto c = std::make_shared<Chan<int>>(0);
        go([mu, c] {
            mu->lock();
            c->send(1);
            mu->unlock();
        });
        go([mu, c] {
            mu->lock();
            c->recv();
            mu->unlock();
        });
        sleepMs(10);
    });
    EXPECT_FALSE(detected);
    EXPECT_EQ(res.leaked.size(), 2u);
}

TEST(LockDL, NoFalsePositiveOnCleanLocking)
{
    auto [res, detected] = runWithLockdl([] {
        gosync::Mutex a, b;
        for (int i = 0; i < 5; ++i) {
            a.lock();
            b.lock();
            b.unlock();
            a.unlock();
        }
    });
    EXPECT_FALSE(detected);
    EXPECT_EQ(res.outcome, RunOutcome::Ok);
}

TEST(LockDL, OrderGraphPersistsAcrossExecutions)
{
    // Execution 1 establishes a→b; execution 2 takes b→a: the
    // accumulated graph warns even though each run is individually
    // consistent.
    SchedConfig cfg;
    cfg.noiseProb = 0.0;
    LockDL dl;

    auto mk = [&](bool ab) {
        return [ab] {
            gosync::Mutex a, b;
            gosync::Mutex &first = ab ? a : b;
            gosync::Mutex &second = ab ? b : a;
            first.lock();
            second.lock();
            second.unlock();
            first.unlock();
        };
    };

    {
        Scheduler s1(cfg);
        s1.addSink(&dl);
        s1.run(mk(true));
    }
    EXPECT_FALSE(dl.detected());
    dl.resetExecutionState();
    {
        Scheduler s2(cfg);
        s2.addSink(&dl);
        s2.run(mk(false));
    }
    // Object ids are deterministic per run (1, 2), so the second run's
    // inverted order closes the cycle in the accumulated graph.
    EXPECT_TRUE(dl.detected());
}
