/**
 * @file
 * Merge-determinism tests for the parallel campaign runner: the merged
 * coverage bitmap, bug verdict, ledger row count, and per-iteration
 * outcome stream must be identical for -jobs=1 and any higher worker
 * count given the same seed base, and the early-stop broadcast must
 * never change the canonical detection iteration.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "goker/registry.hh"
#include "obs/profile.hh"
#include "trace/ect_ring.hh"

using namespace goat;
using goat::campaign::CampaignConfig;
using goat::campaign::CampaignResult;
using goat::campaign::runCampaign;

namespace {

const goker::KernelInfo &
kernel(const std::string &name)
{
    const goker::KernelInfo *k =
        goker::KernelRegistry::instance().find(name);
    EXPECT_NE(k, nullptr) << "unknown kernel " << name;
    return *k;
}

CampaignConfig
baseConfig(const goker::KernelInfo &k, int jobs)
{
    CampaignConfig cfg;
    cfg.engine.delayBound = 2;
    cfg.engine.seedBase = 7;
    cfg.engine.maxIterations = 40;
    cfg.engine.collectCoverage = true;
    cfg.engine.covThreshold = 200.0; // never stop on coverage
    cfg.engine.staticModel = goker::kernelCuTable(k);
    cfg.jobs = jobs;
    return cfg;
}

size_t
lineCount(const std::string &path)
{
    std::ifstream in(path);
    size_t n = 0;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            ++n;
    return n;
}

/** The merge-visible digest two campaigns must agree on byte-for-byte. */
void
expectIdentical(const CampaignResult &a, const CampaignResult &b)
{
    EXPECT_EQ(a.merged.bugFound, b.merged.bugFound);
    EXPECT_EQ(a.merged.bugIteration, b.merged.bugIteration);
    EXPECT_EQ(a.merged.firstBug.shortStr(), b.merged.firstBug.shortStr());
    EXPECT_EQ(a.merged.report, b.merged.report);
    EXPECT_EQ(a.merged.raceIteration, b.merged.raceIteration);
    EXPECT_EQ(a.merged.iterations.size(), b.merged.iterations.size());
    EXPECT_EQ(a.merged.finalCoverage, b.merged.finalCoverage);
    EXPECT_EQ(a.coverage.bitmapStr(), b.coverage.bitmapStr());
    EXPECT_EQ(a.cutoffIteration, b.cutoffIteration);
    for (size_t i = 0; i < a.merged.iterations.size() &&
                       i < b.merged.iterations.size();
         ++i) {
        const auto &ia = a.merged.iterations[i];
        const auto &ib = b.merged.iterations[i];
        EXPECT_EQ(ia.exec.outcome, ib.exec.outcome) << "iteration " << i;
        EXPECT_EQ(ia.exec.steps, ib.exec.steps) << "iteration " << i;
        EXPECT_EQ(ia.dl.verdict, ib.dl.verdict) << "iteration " << i;
        EXPECT_EQ(ia.coveragePct, ib.coveragePct) << "iteration " << i;
    }
}

} // namespace

// The acceptance contract: same seed -> identical merged coverage
// bitmap and verdicts for jobs=1 vs jobs=4 vs jobs=8, on two kernels.
TEST(Campaign, MergeDeterminismAcrossJobCounts)
{
    for (const char *name : {"cockroach_1055", "moby_28462"}) {
        const goker::KernelInfo &k = kernel(name);
        CampaignResult r1 = runCampaign(baseConfig(k, 1), k.fn);
        CampaignResult r4 = runCampaign(baseConfig(k, 4), k.fn);
        CampaignResult r8 = runCampaign(baseConfig(k, 8), k.fn);
        SCOPED_TRACE(name);
        EXPECT_TRUE(r1.merged.bugFound);
        expectIdentical(r1, r4);
        expectIdentical(r1, r8);
        EXPECT_EQ(r1.jobs, 1);
        EXPECT_EQ(r4.jobs, 4);
        EXPECT_EQ(r8.jobs, 8);
    }
}

// Same contract with the ECT ring squeezed to its 16-row floor: every
// execution wraps and flushes mid-run many times, and the merged
// digest must still be byte-identical to jobs=1 (the ring is a format
// change, not a semantic one).
TEST(Campaign, MergeDeterminismWithTinyEctRing)
{
    size_t prev = trace::defaultEctRingCapacity();
    trace::setDefaultEctRingCapacity(16);
    const goker::KernelInfo &k = kernel("cockroach_1055");
    CampaignResult r1 = runCampaign(baseConfig(k, 1), k.fn);
    CampaignResult r4 = runCampaign(baseConfig(k, 4), k.fn);
    trace::setDefaultEctRingCapacity(prev);
    EXPECT_TRUE(r1.merged.bugFound);
    expectIdentical(r1, r4);
}

// Ledger row count (and file line count) is the same for any worker
// count: campaign ledgers are buffered and written at merge time,
// truncated at the canonical cutoff.
TEST(Campaign, LedgerRowCountMatchesAcrossJobCounts)
{
    const goker::KernelInfo &k = kernel("cockroach_1055");
    std::string p1 = testing::TempDir() + "campaign_j1.jsonl";
    std::string p4 = testing::TempDir() + "campaign_j4.jsonl";
    std::remove(p1.c_str());
    std::remove(p4.c_str());

    CampaignConfig c1 = baseConfig(k, 1);
    c1.engine.ledgerPath = p1;
    CampaignConfig c4 = baseConfig(k, 4);
    c4.engine.ledgerPath = p4;

    CampaignResult r1 = runCampaign(c1, k.fn);
    CampaignResult r4 = runCampaign(c4, k.fn);

    EXPECT_GT(r1.ledgerRows, 0u);
    EXPECT_EQ(r1.ledgerRows, r4.ledgerRows);
    EXPECT_EQ(lineCount(p1), r1.ledgerRows);
    EXPECT_EQ(lineCount(p4), r4.ledgerRows);
    EXPECT_EQ(r1.ledgerRows, r1.merged.iterations.size());

    // Worker-tagged rows: every campaign row carries "worker" and
    // "wseq", and the single-worker ledger is all worker 0.
    std::ifstream in(p1);
    std::string line;
    while (std::getline(in, line)) {
        EXPECT_NE(line.find("\"worker\":0"), std::string::npos) << line;
        EXPECT_NE(line.find("\"wseq\":"), std::string::npos) << line;
    }
    std::remove(p1.c_str());
    std::remove(p4.c_str());
}

// Early-stop semantics: the merged result stops exactly at the
// canonical first detection; workers past the broadcast watermark may
// execute extra iterations, but those are discarded, never merged.
TEST(Campaign, EarlyStopBroadcastPreservesCanonicalCutoff)
{
    const goker::KernelInfo &k = kernel("cockroach_1055");
    for (int jobs : {1, 4}) {
        CampaignConfig cfg = baseConfig(k, jobs);
        CampaignResult r = runCampaign(cfg, k.fn);
        SCOPED_TRACE(jobs);
        ASSERT_TRUE(r.merged.bugFound);
        EXPECT_EQ(static_cast<int>(r.merged.iterations.size()),
                  r.merged.bugIteration);
        EXPECT_EQ(r.cutoffIteration, r.merged.bugIteration);
        EXPECT_GE(r.executedIterations,
                  static_cast<int>(r.merged.iterations.size()));
        EXPECT_EQ(r.discardedIterations,
                  r.executedIterations -
                      static_cast<int>(r.merged.iterations.size()));
        EXPECT_LE(r.executedIterations, cfg.engine.maxIterations);
    }
}

// With stop-on-bug off the campaign runs the whole budget and every
// iteration is merged, regardless of worker count.
TEST(Campaign, FixedBudgetExecutesEveryIteration)
{
    const goker::KernelInfo &k = kernel("moby_28462");
    for (int jobs : {1, 4}) {
        CampaignConfig cfg = baseConfig(k, jobs);
        cfg.engine.maxIterations = 12;
        cfg.engine.stopOnBug = false;
        CampaignResult r = runCampaign(cfg, k.fn);
        SCOPED_TRACE(jobs);
        EXPECT_EQ(r.executedIterations, 12);
        EXPECT_EQ(r.discardedIterations, 0);
        EXPECT_EQ(r.merged.iterations.size(), 12u);
        EXPECT_EQ(r.cutoffIteration, 12);
    }
}

// The folded worker metrics account for every executed iteration, and
// the worker count is clamped to the iteration budget.
TEST(Campaign, WorkerMetricsFoldAndJobClamp)
{
    const goker::KernelInfo &k = kernel("cockroach_1055");
    CampaignConfig cfg = baseConfig(k, 64);
    cfg.engine.maxIterations = 6;
    cfg.engine.stopOnBug = false;
    CampaignResult r = runCampaign(cfg, k.fn);
    EXPECT_EQ(r.jobs, 6); // clamped to maxIterations
    auto it = r.workerMetrics.counters.find("engine.iterations");
    ASSERT_NE(it, r.workerMetrics.counters.end());
    EXPECT_EQ(it->second,
              static_cast<uint64_t>(r.executedIterations));
}

namespace {

/**
 * Deterministic profile clock: each thread sees a monotone counter
 * advancing 7ns per read. Durations are same-thread differences, so a
 * scope's duration is 7ns * (nested clock reads + 1) — a pure function
 * of the iteration's code path and sampling phase, independent of
 * which worker runs it or what ran on the thread before.
 */
uint64_t
fakeClock()
{
    thread_local uint64_t t = 0;
    return t += 7;
}

/** RAII install/restore of the fake profile clock. */
struct FakeClockGuard
{
    obs::ProfileClock prev;
    FakeClockGuard() : prev(obs::setProfileClock(&fakeClock)) {}
    ~FakeClockGuard() { obs::setProfileClock(prev); }
};

} // namespace

// The profiler's canonical fold is byte-identical across worker counts
// under a deterministic clock: full snapshots (buckets included) and
// the executed-side fold both match, because per-iteration deltas are
// pure functions of the iteration and the merge folds them in
// canonical order.
TEST(Campaign, ProfileMergeIsByteIdenticalAcrossJobCounts)
{
    FakeClockGuard clock;
    const goker::KernelInfo &k = kernel("cockroach_1055");
    CampaignConfig c1 = baseConfig(k, 1);
    c1.engine.profile = true;
    c1.engine.stopOnBug = false; // fixed budget: executed == merged
    CampaignConfig c4 = baseConfig(k, 4);
    c4.engine.profile = true;
    c4.engine.stopOnBug = false;

    CampaignResult r1 = runCampaign(c1, k.fn);
    CampaignResult r4 = runCampaign(c4, k.fn);

    ASSERT_FALSE(r1.merged.profile.empty());
    EXPECT_GT(r1.merged.profile.stage(obs::Stage::FiberSwitch).total, 0u);
    EXPECT_GT(r1.merged.profile.stage(obs::Stage::TraceAppend).total, 0u);
    EXPECT_EQ(r1.merged.profile.jsonStr(), r4.merged.profile.jsonStr());
    EXPECT_EQ(r1.executedProfile.jsonStr(), r4.executedProfile.jsonStr());
}

// Under the real clock, sum_ns is host noise but the entry counters
// stay deterministic: per-stage total and sampled count match across
// worker counts (the ledger-canonical subset check_ledger.py keeps).
TEST(Campaign, ProfileEntryCountsDeterministicUnderRealClock)
{
    const goker::KernelInfo &k = kernel("moby_28462");
    CampaignConfig c1 = baseConfig(k, 1);
    c1.engine.profile = true;
    c1.engine.stopOnBug = false;
    c1.engine.maxIterations = 15;
    CampaignConfig c4 = c1;
    c4.jobs = 4;

    CampaignResult r1 = runCampaign(c1, k.fn);
    CampaignResult r4 = runCampaign(c4, k.fn);

    for (size_t i = 0; i < obs::kNumStages; ++i) {
        SCOPED_TRACE(obs::stageName(static_cast<obs::Stage>(i)));
        EXPECT_EQ(r1.merged.profile.stages[i].total,
                  r4.merged.profile.stages[i].total);
        EXPECT_EQ(r1.merged.profile.stages[i].count,
                  r4.merged.profile.stages[i].count);
    }
}

// With -profile off no instrumentation site records anything: the
// merged snapshot is empty and ledger rows carry no profile key.
TEST(Campaign, ProfileOffRecordsNothing)
{
    const goker::KernelInfo &k = kernel("cockroach_1055");
    CampaignConfig cfg = baseConfig(k, 2);
    cfg.engine.maxIterations = 4;
    cfg.engine.stopOnBug = false;
    CampaignResult r = runCampaign(cfg, k.fn);
    EXPECT_TRUE(r.merged.profile.empty());
    EXPECT_TRUE(r.executedProfile.empty());
}

// The coverage-saturation series derives from the canonical merged
// fold, so its JSONL encoding is byte-identical for any worker count,
// monotone in covered, and one sample per merged iteration.
TEST(Campaign, SaturationSeriesIsByteIdenticalAcrossJobCounts)
{
    const goker::KernelInfo &k = kernel("moby_28462");
    CampaignConfig c1 = baseConfig(k, 1);
    c1.engine.stopOnBug = false;
    c1.engine.maxIterations = 20;
    CampaignConfig c4 = c1;
    c4.jobs = 4;

    CampaignResult r1 = runCampaign(c1, k.fn);
    CampaignResult r4 = runCampaign(c4, k.fn);

    ASSERT_EQ(r1.merged.saturation.samples().size(), 20u);
    EXPECT_EQ(r1.merged.saturation.jsonlStr(),
              r4.merged.saturation.jsonlStr());

    uint64_t prev = 0;
    for (const auto &s : r1.merged.saturation.samples()) {
        EXPECT_GE(s.covered, prev);
        EXPECT_LE(s.covered, s.total);
        EXPECT_EQ(s.blocked + s.unblocking + s.nop + s.blocking,
                  s.covered);
        prev = s.covered;
    }
    EXPECT_DOUBLE_EQ(r1.merged.saturation.samples().back().pct(),
                     r1.merged.finalCoverage);
}

// A coverage threshold stops the merged campaign at the same canonical
// iteration for any worker count.
TEST(Campaign, CoverageThresholdStopIsDeterministic)
{
    const goker::KernelInfo &k = kernel("moby_28462");
    std::vector<int> cutoffs;
    for (int jobs : {1, 4}) {
        CampaignConfig cfg = baseConfig(k, jobs);
        cfg.engine.maxIterations = 30;
        cfg.engine.stopOnBug = false;
        cfg.engine.covThreshold = 50.0;
        CampaignResult r = runCampaign(cfg, k.fn);
        cutoffs.push_back(r.cutoffIteration);
        SCOPED_TRACE(jobs);
        EXPECT_GE(r.merged.finalCoverage, 50.0);
    }
    EXPECT_EQ(cutoffs[0], cutoffs[1]);
}
