/**
 * @file
 * Unit tests for the base utilities: RNG determinism and distribution,
 * formatting helpers, and source-location capture.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "base/fmt.hh"
#include "base/rng.hh"
#include "base/source_loc.hh"

using namespace goat;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next64() == b.next64())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng r(0);
    std::set<uint64_t> vals;
    for (int i = 0; i < 100; ++i)
        vals.insert(r.next64());
    EXPECT_GT(vals.size(), 95u);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng r(7);
    for (int bound : {1, 2, 3, 10, 1000}) {
        for (int i = 0; i < 200; ++i) {
            uint64_t v = r.nextBelow(bound);
            EXPECT_LT(v, static_cast<uint64_t>(bound));
        }
    }
}

TEST(Rng, NextBelowRoughlyUniform)
{
    Rng r(13);
    std::map<uint64_t, int> counts;
    const int n = 60000, k = 6;
    for (int i = 0; i < n; ++i)
        counts[r.nextBelow(k)]++;
    for (int i = 0; i < k; ++i) {
        EXPECT_GT(counts[i], n / k * 0.9);
        EXPECT_LT(counts[i], n / k * 1.1);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng r(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(5);
    for (int i = 0; i < 1000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Fmt, StrFormatBasics)
{
    EXPECT_EQ(strFormat("a%db", 7), "a7b");
    EXPECT_EQ(strFormat("%s-%s", "x", "y"), "x-y");
    EXPECT_EQ(strFormat("%%"), "%");
}

TEST(Fmt, StrFormatLongOutput)
{
    std::string long_in(5000, 'z');
    EXPECT_EQ(strFormat("%s", long_in.c_str()).size(), 5000u);
}

TEST(Fmt, JoinAndSplitRoundTrip)
{
    std::vector<std::string> parts = {"a", "bb", "", "c"};
    std::string joined = strJoin(parts, ",");
    EXPECT_EQ(joined, "a,bb,,c");
    EXPECT_EQ(strSplit(joined, ','), parts);
}

TEST(Fmt, SplitSingleField)
{
    EXPECT_EQ(strSplit("abc", ','), std::vector<std::string>{"abc"});
}

TEST(Fmt, Trim)
{
    EXPECT_EQ(strTrim("  x y \t\n"), "x y");
    EXPECT_EQ(strTrim(""), "");
    EXPECT_EQ(strTrim("   "), "");
}

TEST(Fmt, StartsWith)
{
    EXPECT_TRUE(strStartsWith("foobar", "foo"));
    EXPECT_FALSE(strStartsWith("fo", "foo"));
    EXPECT_TRUE(strStartsWith("x", ""));
}

TEST(Fmt, PathBasename)
{
    EXPECT_EQ(pathBasename("/a/b/c.cc"), "c.cc");
    EXPECT_EQ(pathBasename("c.cc"), "c.cc");
    EXPECT_EQ(pathBasename("/a/b/"), "");
}

TEST(SourceLoc, CurrentCapturesCaller)
{
    SourceLoc loc = SourceLoc::current();
    EXPECT_EQ(loc.basename(), "test_base.cc");
    EXPECT_GT(loc.line, 0u);
}

TEST(SourceLoc, DefaultArgumentCapturesCallSite)
{
    auto f = [](SourceLoc loc = SourceLoc::current()) { return loc; };
    SourceLoc a = f();
    SourceLoc b = f();
    EXPECT_EQ(a.basename(), "test_base.cc");
    // Both calls are on distinct lines.
    EXPECT_NE(a.line, b.line);
}

TEST(SourceLoc, EqualityAndOrdering)
{
    SourceLoc a("x.cc", 3), b("x.cc", 3), c("x.cc", 4), d("y.cc", 1);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(a < c);
    EXPECT_TRUE(a < d);
    EXPECT_FALSE(d < a);
}

TEST(SourceLoc, StrRendering)
{
    SourceLoc a("/long/path/x.cc", 12);
    EXPECT_EQ(a.str(), "x.cc:12");
}
