/**
 * @file
 * Unit tests for channels: unbuffered rendezvous in both arrival
 * orders, buffered capacity semantics, close semantics (drain,
 * ok=false, panics), FIFO waiter fairness, range iteration, and the
 * trace events channel operations emit.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chan/chan.hh"
#include "chan/time.hh"
#include "test_util.hh"

using namespace goat;
using namespace goat::runtime;
using goat::test::countEvents;
using goat::test::runProgram;

TEST(Chan, UnbufferedSenderFirst)
{
    int got = 0;
    auto rr = runProgram([&] {
        Chan<int> c;
        go([&, c]() mutable { c.send(42); });
        got = c.recv();
    });
    EXPECT_EQ(got, 42);
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Ok);
    EXPECT_TRUE(rr.exec.leaked.empty());
}

TEST(Chan, UnbufferedReceiverFirst)
{
    int got = 0;
    auto rr = runProgram([&] {
        Chan<int> c;
        go([&, c]() mutable { got = c.recv(); });
        yield(); // let the receiver park first
        c.send(7);
        yield();
    });
    EXPECT_EQ(got, 7);
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Ok);
}

TEST(Chan, UnbufferedSendBlocksUntilReceive)
{
    std::vector<int> order;
    auto rr = runProgram([&] {
        Chan<int> c;
        go([&, c]() mutable {
            order.push_back(1);
            c.send(1); // parks: no receiver yet
            order.push_back(3);
        });
        yield();
        order.push_back(2);
        c.recv();
        yield();
    });
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Chan, BufferedSendDoesNotBlockUntilFull)
{
    auto rr = runProgram([&] {
        Chan<int> c(2);
        c.send(1);
        c.send(2);
        EXPECT_EQ(c.len(), 2u);
        EXPECT_EQ(c.recv(), 1);
        EXPECT_EQ(c.recv(), 2);
    });
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Ok);
}

TEST(Chan, BufferedFifoOrder)
{
    std::vector<int> got;
    auto rr = runProgram([&] {
        Chan<int> c(5);
        for (int i = 0; i < 5; ++i)
            c.send(i);
        for (int i = 0; i < 5; ++i)
            got.push_back(c.recv());
    });
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Chan, BufferedBlocksWhenFull)
{
    std::vector<int> order;
    auto rr = runProgram([&] {
        Chan<int> c(1);
        go([&, c]() mutable {
            c.send(1); // buffered, no block
            order.push_back(1);
            c.send(2); // buffer full: parks
            order.push_back(3);
        });
        yield();
        order.push_back(2);
        EXPECT_EQ(c.recv(), 1); // frees a slot, wakes the sender
        yield();
        EXPECT_EQ(c.recv(), 2);
    });
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Chan, RecvFromFullBufferSlidesWaitingSenderIn)
{
    // The parked sender's value must land *behind* the buffered ones.
    std::vector<int> got;
    auto rr = runProgram([&] {
        Chan<int> c(2);
        go([&, c]() mutable {
            c.send(1);
            c.send(2);
            c.send(3); // parks: buffer full
        });
        yield();
        got.push_back(c.recv());
        got.push_back(c.recv());
        got.push_back(c.recv());
        yield();
    });
    EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Chan, MultipleSendersServedFifo)
{
    std::vector<int> got;
    auto rr = runProgram([&] {
        Chan<int> c;
        for (int i = 0; i < 3; ++i)
            go([&, c, i]() mutable { c.send(i); });
        for (int i = 0; i < 4; ++i)
            yield(); // all three park in order
        for (int i = 0; i < 3; ++i)
            got.push_back(c.recv());
        yield();
    });
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
}

TEST(Chan, MultipleReceiversServedFifo)
{
    std::vector<int> got(3, -1);
    auto rr = runProgram([&] {
        Chan<int> c;
        for (int i = 0; i < 3; ++i)
            go([&, c, i]() mutable { got[i] = c.recv(); });
        for (int i = 0; i < 4; ++i)
            yield();
        c.send(10);
        c.send(11);
        c.send(12);
        yield();
    });
    EXPECT_EQ(got, (std::vector<int>{10, 11, 12}));
}

TEST(Chan, CloseWakesBlockedReceiverWithOkFalse)
{
    bool ok = true;
    auto rr = runProgram([&] {
        Chan<int> c;
        go([&, c]() mutable {
            auto [v, o] = c.recvOk();
            ok = o;
            EXPECT_EQ(v, 0);
        });
        yield();
        c.close();
        yield();
    });
    EXPECT_FALSE(ok);
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Ok);
}

TEST(Chan, RecvOnClosedDrainsBufferFirst)
{
    std::vector<std::pair<int, bool>> got;
    auto rr = runProgram([&] {
        Chan<int> c(2);
        c.send(1);
        c.send(2);
        c.close();
        for (int i = 0; i < 3; ++i)
            got.push_back(c.recvOk());
    });
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0], std::make_pair(1, true));
    EXPECT_EQ(got[1], std::make_pair(2, true));
    EXPECT_EQ(got[2], std::make_pair(0, false));
}

TEST(Chan, SendOnClosedPanics)
{
    auto rr = runProgram([&] {
        Chan<int> c;
        c.close();
        c.send(1);
    });
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Crash);
    EXPECT_EQ(rr.exec.panicMsg, "send on closed channel");
}

TEST(Chan, CloseOfClosedPanics)
{
    auto rr = runProgram([&] {
        Chan<int> c;
        c.close();
        c.close();
    });
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Crash);
    EXPECT_EQ(rr.exec.panicMsg, "close of closed channel");
}

TEST(Chan, CloseWakesParkedSenderIntoPanic)
{
    auto rr = runProgram([&] {
        Chan<int> c;
        go([&, c]() mutable { c.send(5); }); // parks (no receiver)
        yield();
        c.close();
        yield();
    });
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Crash);
    EXPECT_EQ(rr.exec.panicMsg, "send on closed channel");
}

TEST(Chan, CloseWakesAllReceivers)
{
    int woken = 0;
    auto rr = runProgram([&] {
        Chan<int> c;
        for (int i = 0; i < 4; ++i) {
            go([&, c]() mutable {
                auto [v, ok] = c.recvOk();
                EXPECT_FALSE(ok);
                ++woken;
            });
        }
        for (int i = 0; i < 5; ++i)
            yield();
        c.close();
        for (int i = 0; i < 5; ++i)
            yield();
    });
    EXPECT_EQ(woken, 4);
}

TEST(Chan, RangeIteratesUntilClose)
{
    std::vector<int> got;
    auto rr = runProgram([&] {
        Chan<int> c(10);
        go([&, c]() mutable {
            for (int i = 0; i < 5; ++i)
                c.send(i);
            c.close();
        });
        c.range([&](int v) { got.push_back(v); });
    });
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Ok);
}

TEST(Chan, ChannelIsReferenceType)
{
    auto rr = runProgram([&] {
        Chan<int> a(1);
        Chan<int> b = a; // shares the same channel
        a.send(9);
        EXPECT_EQ(b.recv(), 9);
        EXPECT_EQ(a.id(), b.id());
    });
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Ok);
}

TEST(Chan, StringPayload)
{
    std::string got;
    auto rr = runProgram([&] {
        Chan<std::string> c;
        go([&, c]() mutable { c.send(std::string("hello")); });
        got = c.recv();
    });
    EXPECT_EQ(got, "hello");
}

TEST(Chan, DeadlockWhenNoReceiverEver)
{
    auto rr = runProgram([&] {
        Chan<int> c;
        c.send(1); // main parks forever
    });
    EXPECT_EQ(rr.exec.outcome, RunOutcome::GlobalDeadlock);
}

TEST(Chan, LeakWhenChildSenderNeverMatched)
{
    auto rr = runProgram([&] {
        Chan<int> c;
        go([&, c]() mutable { c.send(1); });
        yield();
        // Main returns; the child sender is stuck forever.
    });
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Ok);
    ASSERT_EQ(rr.exec.leaked.size(), 1u);
    EXPECT_EQ(rr.exec.leaked[0].reason, BlockReason::Send);
}

TEST(Chan, EventsCarryBlockedAndWokenFlags)
{
    auto rr = runProgram([&] {
        Chan<int> c;
        go([&, c]() mutable { c.send(1); }); // sender parks
        yield();
        c.recv(); // unblocking receive
        yield();
    });
    // The receive must carry woke=1, blockedFirst=0; the send completes
    // with blockedFirst=1.
    bool saw_recv = false, saw_send = false;
    for (const auto &ev : rr.ect.events()) {
        if (ev.type == trace::EventType::ChRecv) {
            EXPECT_EQ(ev.args[1], 0); // not blocked
            EXPECT_EQ(ev.args[2], 1); // woke the sender
            saw_recv = true;
        }
        if (ev.type == trace::EventType::ChSend) {
            EXPECT_EQ(ev.args[1], 1); // blocked first
            saw_send = true;
        }
    }
    EXPECT_TRUE(saw_recv);
    EXPECT_TRUE(saw_send);
}

TEST(Chan, ChMakeEventRecordsCapacity)
{
    auto rr = runProgram([&] { Chan<int> c(3); });
    bool found = false;
    for (const auto &ev : rr.ect.events()) {
        if (ev.type == trace::EventType::ChMake) {
            EXPECT_EQ(ev.args[1], 3);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(ChanTime, AfterFiresOnVirtualClock)
{
    bool fired = false;
    auto rr = runProgram([&] {
        auto t = gotime::after(5 * gotime::Millisecond);
        t.recv();
        fired = true;
        EXPECT_EQ(now(), 5 * gotime::Millisecond);
    });
    EXPECT_TRUE(fired);
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Ok);
}

TEST(ChanTime, AfterBuffersWhenNobodyWaits)
{
    bool got = false;
    auto rr = runProgram([&] {
        auto t = gotime::after(1 * gotime::Millisecond);
        sleepMs(5); // the timer fires while we sleep; tick is buffered
        auto [v, ok] = t.recvOk();
        got = ok;
    });
    EXPECT_TRUE(got);
}

TEST(ChanTime, TickerDeliversRepeatedly)
{
    int ticks = 0;
    auto rr = runProgram([&] {
        gotime::Ticker tk(gotime::Millisecond);
        for (int i = 0; i < 3; ++i) {
            tk.c().recv();
            ++ticks;
        }
        tk.stop();
    });
    EXPECT_EQ(ticks, 3);
    EXPECT_EQ(rr.exec.outcome, RunOutcome::Ok);
}

TEST(ChanTime, StoppedTickerStopsDelivering)
{
    auto rr = runProgram([&] {
        gotime::Ticker tk(gotime::Millisecond);
        tk.c().recv();
        tk.stop();
        // After stop, waiting again can never succeed: global deadlock.
        tk.c().recv();
    });
    EXPECT_EQ(rr.exec.outcome, RunOutcome::GlobalDeadlock);
}
