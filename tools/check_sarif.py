#!/usr/bin/env python3
"""Structural validator for the goat lint SARIF output.

Checks that a document is well-formed SARIF 2.1.0 as consumed by code
scanning UIs: correct version/schema, a tool driver with uniquely
identified rules, and results whose ruleId/ruleIndex, level, message,
and physical locations are all consistent.

Usage:
  check_sarif.py --file report.sarif
      Validate one SARIF file on disk.
  check_sarif.py /path/to/goat [srcdir]
      End-to-end: run `goat -lint -lint-format=sarif` over all bug
      kernels (expected to produce findings) and over srcdir/examples
      (expected to produce none), validating both documents. srcdir
      defaults to the repository root containing this script.

Registered as the `check_sarif` ctest; exits non-zero (with a
diagnostic on stderr) on the first violation.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

VALID_LEVELS = {"error", "warning", "note", "none"}


def fail(msg):
    print(f"check_sarif: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_location(loc, where):
    phys = loc.get("physicalLocation")
    if not isinstance(phys, dict):
        fail(f"{where}: location without physicalLocation")
    art = phys.get("artifactLocation", {})
    uri = art.get("uri")
    if not isinstance(uri, str) or not uri:
        fail(f"{where}: empty artifactLocation.uri")
    region = phys.get("region", {})
    line = region.get("startLine")
    if not isinstance(line, int) or isinstance(line, bool) or line < 1:
        fail(f"{where}: bad region.startLine {line!r}")


def check_sarif(doc):
    """Validate one parsed SARIF document.

    Returns (result count, driver rule ids, suppressed count summed
    over runs that declare the goat run-level properties bag).
    """
    if doc.get("version") != "2.1.0":
        fail(f"version is {doc.get('version')!r}, expected '2.1.0'")
    schema = doc.get("$schema", "")
    if "sarif-schema-2.1.0" not in schema:
        fail(f"$schema does not reference 2.1.0: {schema!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("no runs[] array")
    total_results = 0
    total_suppressed = 0
    all_rule_ids = []
    for ri, run in enumerate(runs):
        where = f"runs[{ri}]"
        driver = run.get("tool", {}).get("driver")
        if not isinstance(driver, dict):
            fail(f"{where}: no tool.driver")
        if not driver.get("name"):
            fail(f"{where}: empty driver name")
        rules = driver.get("rules", [])
        if not isinstance(rules, list) or not rules:
            fail(f"{where}: driver has no rules")
        rule_ids = []
        for ki, rule in enumerate(rules):
            rwhere = f"{where}.rules[{ki}]"
            rid = rule.get("id")
            if not isinstance(rid, str) or not rid:
                fail(f"{rwhere}: empty rule id")
            if rid in rule_ids:
                fail(f"{rwhere}: duplicate rule id {rid}")
            rule_ids.append(rid)
            if not rule.get("name"):
                fail(f"{rwhere}: empty rule name")
            if not rule.get("shortDescription", {}).get("text"):
                fail(f"{rwhere}: empty shortDescription.text")
            level = rule.get("defaultConfiguration", {}).get("level")
            if level not in VALID_LEVELS:
                fail(f"{rwhere}: bad default level {level!r}")
        results = run.get("results")
        if not isinstance(results, list):
            fail(f"{where}: results is not an array")
        for si, res in enumerate(results):
            swhere = f"{where}.results[{si}]"
            rid = res.get("ruleId")
            if rid not in rule_ids:
                fail(f"{swhere}: ruleId {rid!r} not among driver rules")
            idx = res.get("ruleIndex")
            if idx is not None:
                if not isinstance(idx, int) or isinstance(idx, bool) \
                        or not 0 <= idx < len(rule_ids):
                    fail(f"{swhere}: ruleIndex {idx!r} out of range")
                if rule_ids[idx] != rid:
                    fail(f"{swhere}: ruleIndex {idx} names "
                         f"{rule_ids[idx]}, not ruleId {rid}")
            if res.get("level") not in VALID_LEVELS:
                fail(f"{swhere}: bad level {res.get('level')!r}")
            if not res.get("message", {}).get("text"):
                fail(f"{swhere}: empty message.text")
            locations = res.get("locations")
            if not isinstance(locations, list) or not locations:
                fail(f"{swhere}: no locations[]")
            for loc in locations:
                check_location(loc, swhere)
            for loc in res.get("relatedLocations", []):
                check_location(loc, f"{swhere}.relatedLocations")
        total_results += len(results)
        all_rule_ids.extend(rule_ids)
        props = run.get("properties")
        if props is not None:
            supp = props.get("suppressed")
            if not isinstance(supp, int) or isinstance(supp, bool) \
                    or supp < 0:
                fail(f"{where}: bad properties.suppressed {supp!r}")
            total_suppressed += supp
    return total_results, all_rule_ids, total_suppressed


def load(path):
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")


def run_lint(goat, out, lint_path=None, kernel=None):
    cmd = [goat, "-lint", "-lint-format=sarif", f"-lint-out={out}"]
    if lint_path is not None:
        cmd.append(f"-lint-path={lint_path}")
    if kernel is not None:
        cmd.append(f"-kernel={kernel}")
    proc = subprocess.run(cmd, capture_output=True, text=True,
                          timeout=90)
    if proc.returncode != 0:
        fail(f"goat exited {proc.returncode}: {proc.stdout}"
             f"{proc.stderr}")
    if not Path(out).exists():
        fail(f"SARIF file not written (cmd: {' '.join(cmd)})")


def main():
    if len(sys.argv) >= 3 and sys.argv[1] == "--file":
        n, _, supp = check_sarif(load(sys.argv[2]))
        print(f"check_sarif: OK — {sys.argv[2]}: {n} result(s), "
              f"{supp} suppressed")
        return
    if len(sys.argv) < 2:
        fail("usage: check_sarif.py --file report.sarif | "
             "check_sarif.py /path/to/goat [srcdir]")
    goat = sys.argv[1]
    srcdir = Path(sys.argv[2]) if len(sys.argv) > 2 \
        else Path(__file__).resolve().parent.parent

    with tempfile.TemporaryDirectory(prefix="goat_sarif_") as tmp:
        # All bug kernels: the seeded bugs must surface as findings.
        kernels = Path(tmp) / "kernels.sarif"
        run_lint(goat, kernels, kernel="all")
        n_kernels, rule_ids, _ = check_sarif(load(kernels))
        if n_kernels == 0:
            fail("lint over the bug kernels produced no findings")
        # The flow-aware tier's rule must ship in the driver table.
        if "GL008" not in rule_ids:
            fail("driver rules lack GL008 (flow-aware race rule)")

        # The clean examples must lint clean — but the document still
        # has to be structurally valid SARIF (empty results array).
        examples = Path(tmp) / "examples.sarif"
        run_lint(goat, examples, lint_path=srcdir / "examples")
        n_examples, _, n_supp = check_sarif(load(examples))
        if n_examples != 0:
            fail(f"clean examples produced {n_examples} finding(s)")
        # race_hunt.cpp acknowledges its seeded race inline; the
        # suppression must be accounted for, not silently dropped.
        if n_supp < 1:
            fail("examples document reports no suppressed findings "
                 "(expected the race_hunt goat:nolint)")

    print(f"check_sarif: OK — kernels: {n_kernels} result(s), "
          f"examples: clean ({n_supp} suppressed), both documents "
          f"valid SARIF 2.1.0")


if __name__ == "__main__":
    main()
