#!/usr/bin/env python3
"""Sanity-check the committed benchmark baselines at the repo root.

  * BENCH_obs.json — the -profile overhead A/B written by bench_obs.
    Must parse, carry the pinned-seed run's parameters, and show the
    stage profiler costing less than the documented 5% budget
    (docs/INTERNALS.md §7) over a profile-off campaign.
  * BENCH_campaign.json — the campaign scaling sweep written by
    bench_campaign. Must parse, cover jobs ∈ {1,2,4,8}, and report
    merged_identical=true everywhere (the determinism cross-check the
    bench performs on its own results).

Usage: check_bench.py [repo_root]

Registered as the `check_bench` ctest; exits non-zero (with a
diagnostic on stderr) on the first violation. Regenerate the
baselines with `build/bench/bench_obs` / `build/bench/bench_campaign`
run from the repo root.
"""

import json
import sys
from pathlib import Path

OVERHEAD_BUDGET_PCT = 5.0


def fail(msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    if not path.exists():
        fail(f"{path.name} missing — run the bench from the repo root")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as e:
        fail(f"{path.name} is not valid JSON: {e}")


def pos_int(doc, name, key):
    v = doc.get(key)
    if not isinstance(v, int) or isinstance(v, bool) or v <= 0:
        fail(f"{name}: bad {key} {v!r}")
    return v


def check_obs(root):
    doc = load(root / "BENCH_obs.json")
    if doc.get("bench") != "profile_overhead":
        fail(f"BENCH_obs.json: unexpected bench {doc.get('bench')!r}")
    if not doc.get("kernel"):
        fail("BENCH_obs.json: missing kernel")
    pos_int(doc, "BENCH_obs.json", "iterations")
    pos_int(doc, "BENCH_obs.json", "reps")
    off = pos_int(doc, "BENCH_obs.json", "profile_off_us")
    on = pos_int(doc, "BENCH_obs.json", "profile_on_us")
    pct = doc.get("overhead_pct")
    if not isinstance(pct, (int, float)) or isinstance(pct, bool):
        fail(f"BENCH_obs.json: bad overhead_pct {pct!r}")
    recomputed = 100.0 * (on - off) / off
    if abs(recomputed - pct) > 0.01:
        fail(f"BENCH_obs.json: overhead_pct {pct} does not match "
             f"off/on times ({recomputed:.3f})")
    if pct >= OVERHEAD_BUDGET_PCT:
        fail(f"BENCH_obs.json: -profile overhead {pct:.2f}% exceeds "
             f"the {OVERHEAD_BUDGET_PCT}% budget")
    print(f"check_bench: OK — BENCH_obs.json: -profile overhead "
          f"{pct:+.2f}% over {doc['iterations']} iterations "
          f"(budget {OVERHEAD_BUDGET_PCT}%)")


def check_campaign(root):
    doc = load(root / "BENCH_campaign.json")
    if doc.get("bench") != "campaign_scaling":
        fail(f"BENCH_campaign.json: unexpected bench "
             f"{doc.get('bench')!r}")
    pos_int(doc, "BENCH_campaign.json", "kernels")
    pos_int(doc, "BENCH_campaign.json", "iterations")
    samples = doc.get("samples")
    if not isinstance(samples, list) or not samples:
        fail("BENCH_campaign.json: missing samples array")
    jobs_seen = []
    for s in samples:
        jobs_seen.append(s.get("jobs"))
        pos_int(s, f"BENCH_campaign.json jobs={s.get('jobs')}",
                "wall_us")
        if s.get("merged_identical") is not True:
            fail(f"BENCH_campaign.json: jobs={s.get('jobs')} was not "
                 f"merged_identical — determinism violation")
    if jobs_seen != [1, 2, 4, 8]:
        fail(f"BENCH_campaign.json: samples cover jobs {jobs_seen}, "
             f"expected [1, 2, 4, 8]")
    print(f"check_bench: OK — BENCH_campaign.json: "
          f"{len(samples)} job count(s), all merged_identical")


def main():
    root = Path(sys.argv[1]) if len(sys.argv) > 1 \
        else Path(__file__).resolve().parent.parent
    check_obs(root)
    check_campaign(root)


if __name__ == "__main__":
    main()
