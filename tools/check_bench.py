#!/usr/bin/env python3
"""Sanity-check and compare the benchmark baselines at the repo root.

Validate mode (default):

  * BENCH_obs.json — the -profile overhead A/B written by bench_obs.
    Must parse, carry the pinned-seed run's parameters, and show the
    stage profiler costing less than the documented 5% budget
    (docs/INTERNALS.md §7) over a profile-off campaign.
  * BENCH_campaign.json — the campaign scaling sweep written by
    bench_campaign. Must parse, cover jobs ∈ {1,2,4,8}, and report
    merged_identical=true everywhere (the determinism cross-check the
    bench performs on its own results). Samples marked timed=false
    (job counts oversubscribing the host) are exempt from timing
    fields — their wall time is scheduler noise by construction.

Compare mode (the CI perf-regression gate):

  check_bench.py --compare OLD.json NEW.json

  Both files must be the same bench (detected from the "bench" field).
  Per-iteration wall times are compared — campaign_scaling compares
  wall_us/(kernels*iterations) for each jobs value timed in BOTH
  files; profile_overhead compares the off and on legs and, when both
  files carry a "stages" object, each stage's mean ns. A slowdown
  above 25% fails (exit 1); 10–25% prints a warning but passes, since
  the CI runners are shared and noisy. Speedups always pass.

Usage: check_bench.py [repo_root]
       check_bench.py --compare old.json new.json

Registered as the `check_bench` ctest (validate mode); exits non-zero
(with a diagnostic on stderr) on the first violation. Regenerate the
baselines with `build/bench/bench_obs` / `build/bench/bench_campaign`
run from the repo root.
"""

import json
import sys
from pathlib import Path

OVERHEAD_BUDGET_PCT = 5.0
FAIL_REGRESSION_PCT = 25.0
WARN_REGRESSION_PCT = 10.0


def fail(msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    if not path.exists():
        fail(f"{path.name} missing — run the bench from the repo root")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as e:
        fail(f"{path.name} is not valid JSON: {e}")


def pos_int(doc, name, key):
    v = doc.get(key)
    if not isinstance(v, int) or isinstance(v, bool) or v <= 0:
        fail(f"{name}: bad {key} {v!r}")
    return v


def check_obs(root):
    doc = load(root / "BENCH_obs.json")
    if doc.get("bench") != "profile_overhead":
        fail(f"BENCH_obs.json: unexpected bench {doc.get('bench')!r}")
    if not doc.get("kernel"):
        fail("BENCH_obs.json: missing kernel")
    pos_int(doc, "BENCH_obs.json", "iterations")
    pos_int(doc, "BENCH_obs.json", "reps")
    off = pos_int(doc, "BENCH_obs.json", "profile_off_us")
    on = pos_int(doc, "BENCH_obs.json", "profile_on_us")
    pct = doc.get("overhead_pct")
    if not isinstance(pct, (int, float)) or isinstance(pct, bool):
        fail(f"BENCH_obs.json: bad overhead_pct {pct!r}")
    recomputed = 100.0 * (on - off) / off
    if abs(recomputed - pct) > 0.01:
        fail(f"BENCH_obs.json: overhead_pct {pct} does not match "
             f"off/on times ({recomputed:.3f})")
    if pct >= OVERHEAD_BUDGET_PCT:
        fail(f"BENCH_obs.json: -profile overhead {pct:.2f}% exceeds "
             f"the {OVERHEAD_BUDGET_PCT}% budget")
    stages = doc.get("stages")
    if stages is not None and not isinstance(stages, dict):
        fail(f"BENCH_obs.json: bad stages {type(stages).__name__}")
    print(f"check_bench: OK — BENCH_obs.json: -profile overhead "
          f"{pct:+.2f}% over {doc['iterations']} iterations "
          f"(budget {OVERHEAD_BUDGET_PCT}%)")


def check_campaign(root):
    doc = load(root / "BENCH_campaign.json")
    if doc.get("bench") != "campaign_scaling":
        fail(f"BENCH_campaign.json: unexpected bench "
             f"{doc.get('bench')!r}")
    pos_int(doc, "BENCH_campaign.json", "kernels")
    pos_int(doc, "BENCH_campaign.json", "iterations")
    pos_int(doc, "BENCH_campaign.json", "host_cores")
    samples = doc.get("samples")
    if not isinstance(samples, list) or not samples:
        fail("BENCH_campaign.json: missing samples array")
    jobs_seen = []
    timed_count = 0
    for s in samples:
        name = f"BENCH_campaign.json jobs={s.get('jobs')}"
        jobs_seen.append(s.get("jobs"))
        pos_int(s, name, "wall_us")
        if not isinstance(s.get("timed"), bool):
            fail(f"{name}: missing timed flag")
        if s["timed"]:
            timed_count += 1
            ips = s.get("iters_per_sec")
            if not isinstance(ips, (int, float)) or isinstance(ips, bool) \
                    or ips <= 0:
                fail(f"{name}: bad iters_per_sec {ips!r}")
            spd = s.get("speedup")
            if not isinstance(spd, (int, float)) or isinstance(spd, bool) \
                    or spd <= 0:
                fail(f"{name}: bad speedup {spd!r}")
        if s.get("merged_identical") is not True:
            fail(f"{name}: not merged_identical — determinism violation")
    if jobs_seen != [1, 2, 4, 8]:
        fail(f"BENCH_campaign.json: samples cover jobs {jobs_seen}, "
             f"expected [1, 2, 4, 8]")
    if timed_count == 0:
        fail("BENCH_campaign.json: no timed samples (jobs=1 must "
             "always be timed)")
    print(f"check_bench: OK — BENCH_campaign.json: "
          f"{len(samples)} job count(s), {timed_count} timed, "
          f"all merged_identical")


def delta_pct(old, new):
    return 100.0 * (new - old) / old if old else 0.0


def classify(label, old, new, problems):
    """Record one metric comparison; returns the formatted delta."""
    pct = delta_pct(old, new)
    if pct > FAIL_REGRESSION_PCT:
        problems.append(("fail", label, pct))
    elif pct > WARN_REGRESSION_PCT:
        problems.append(("warn", label, pct))
    return pct


def compare_campaign(old, new, problems):
    def per_iter(doc, sample):
        total = doc["kernels"] * doc["iterations"]
        return sample["wall_us"] / total if total else 0.0

    old_by_jobs = {s.get("jobs"): s for s in old.get("samples", [])}
    compared = 0
    for s in new.get("samples", []):
        o = old_by_jobs.get(s.get("jobs"))
        # Legacy baselines lack the timed flag; they were always timed.
        if not o or not s.get("timed", True) or not o.get("timed", True):
            continue
        ou, nu = per_iter(old, o), per_iter(new, s)
        if not ou or not nu:
            continue
        label = f"campaign jobs={s['jobs']} per-iteration wall"
        pct = classify(label, ou, nu, problems)
        print(f"  {label}: {ou:.1f} -> {nu:.1f} us/iter ({pct:+.1f}%)")
        compared += 1
    if not compared:
        fail("--compare: no timed jobs values common to both files")


def compare_obs(old, new, problems):
    def per_iter(doc, key):
        return doc[key] / doc["iterations"] if doc.get("iterations") \
            else 0.0

    for key, label in (("profile_off_us", "obs profile-off wall"),
                       ("profile_on_us", "obs profile-on wall")):
        ou, nu = per_iter(old, key), per_iter(new, key)
        if not ou or not nu:
            continue
        pct = classify(label, ou, nu, problems)
        print(f"  {label}: {ou:.1f} -> {nu:.1f} us/iter ({pct:+.1f}%)")
    old_stages = old.get("stages") or {}
    new_stages = new.get("stages") or {}
    for stage in sorted(set(old_stages) & set(new_stages)):
        os_, ns = old_stages[stage], new_stages[stage]
        o_mean = os_["sum_ns"] / os_["count"] if os_.get("count") else 0.0
        n_mean = ns["sum_ns"] / ns["count"] if ns.get("count") else 0.0
        if not o_mean or not n_mean:
            continue
        # Per-stage means are informational context for the wall-time
        # verdict: print the delta but only warn, never fail — a single
        # stage's sampled mean is too noisy to gate on alone.
        pct = delta_pct(o_mean, n_mean)
        if pct > FAIL_REGRESSION_PCT:
            problems.append(("warn", f"obs stage {stage} mean", pct))
        print(f"  obs stage {stage}: mean {o_mean:.0f} -> "
              f"{n_mean:.0f} ns ({pct:+.1f}%)")


def compare(old_path, new_path):
    old = load(old_path)
    new = load(new_path)
    bench = new.get("bench")
    if old.get("bench") != bench:
        fail(f"--compare: bench mismatch: {old.get('bench')!r} vs "
             f"{bench!r}")
    print(f"check_bench: comparing {bench}: "
          f"{old_path.name} (old) vs {new_path.name} (new)")
    problems = []
    if bench == "campaign_scaling":
        compare_campaign(old, new, problems)
    elif bench == "profile_overhead":
        compare_obs(old, new, problems)
    else:
        fail(f"--compare: unknown bench {bench!r}")
    failures = [p for p in problems if p[0] == "fail"]
    for kind, label, pct in problems:
        stream = sys.stderr if kind == "fail" else sys.stdout
        word = "REGRESSION" if kind == "fail" else "warning"
        print(f"check_bench: {word}: {label} slowed {pct:+.1f}% "
              f"(fail >{FAIL_REGRESSION_PCT:.0f}%, warn "
              f">{WARN_REGRESSION_PCT:.0f}%)", file=stream)
    if failures:
        sys.exit(1)
    print("check_bench: OK — no regression beyond "
          f"{FAIL_REGRESSION_PCT:.0f}%")


def main():
    args = sys.argv[1:]
    if args and args[0] == "--compare":
        if len(args) != 3:
            fail("usage: check_bench.py --compare old.json new.json")
        compare(Path(args[1]), Path(args[2]))
        return
    root = Path(args[0]) if args \
        else Path(__file__).resolve().parent.parent
    check_obs(root)
    check_campaign(root)


if __name__ == "__main__":
    main()
