/**
 * @file
 * Option parsing for the `goat` CLI, kept header-only so the flag
 * grammar is unit-testable without spawning the binary.
 */

#ifndef GOAT_TOOLS_CLI_OPTIONS_HH
#define GOAT_TOOLS_CLI_OPTIONS_HH

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

namespace goat::cli {

/**
 * Parsed command line of the goat tool.
 */
struct Options
{
    bool list = false;
    std::string kernel;
    int delay = 0;
    int freq = 1;
    int jobs = 1;
    bool cov = false;
    bool race = false;
    bool report = false;
    bool stats = false;
    std::string trace_out;
    std::string html_out;
    std::string ledger_out;
    std::string chrome_out;
    /** Write the first bug's repro recipe to this path. */
    std::string record_out;
    /** Replay a previously recorded recipe instead of campaigning. */
    std::string replay_in;
    /** Minimize the recorded/replayed recipe's yield set. */
    bool minimize = false;
    bool metrics = false;
    uint64_t seed = 1;
    /** Static lint mode: report findings instead of campaigning. */
    bool lint = false;
    /** Lint output format: "text", "json", or "sarif". */
    std::string lint_format = "text";
    /** Lint output file ("" = stdout). */
    std::string lint_out;
    /** Comma-separated files/directories to lint (else kernels). */
    std::string lint_path;
    /** Seed the campaign's priority yield sites from the lint pass. */
    bool lint_guided = false;
    /** Exit policy for -lint: "none" (always 0) or "warn" (exit 3 on
     *  any finding). */
    std::string lint_fail_on = "none";
    /** Seed priority yield sites from the static MHP pair set. */
    bool mhp_prune = false;
    /** Write the kernel's MHP pair dump here and exit (static mode). */
    std::string mhp_out;
    /** Enable the hot-path stage profiler and print its table. */
    bool profile = false;
    /**
     * Predictive happens-before analysis: infer blocking bugs from
     * every iteration's trace (or a replayed one) and cross-check
     * them by synthesized-recipe replay.
     */
    bool predict = false;
    /** Write the prediction findings as a JSON document here. */
    std::string predict_out;
    /**
     * Progress-heartbeat interval in seconds (0 = off). `-progress`
     * alone means 1; `-progress=N` sets N.
     */
    int progress = 0;
    /** Write the coverage-saturation JSONL here (+ ".html" report). */
    std::string saturation_out;
    /** Atomically rewrite a JSON status snapshot here each interval. */
    std::string status_out;
    /**
     * ECT ring capacity in rows (0 = keep the built-in default).
     * Smaller rings bound trace memory and flush in batches; the
     * 16-row floor in trace/ect_ring.cc still applies.
     */
    uint64_t ring_capacity = 0;
    /**
     * Run campaign shards in forked child processes under a
     * supervisor that classifies crashes and respawns shards
     * (src/campaign/supervisor.hh).
     */
    bool isolate = false;
    /** Per-iteration wall-clock watchdog, seconds (requires -isolate). */
    int iter_timeout = 0;
    /** Per-shard address-space ceiling, MiB (requires -isolate). */
    int mem_limit = 0;
    /** Respawn budget per shard (requires -isolate). */
    int max_respawns = 16;
    /** Periodic campaign checkpoint path ("" = off). */
    std::string checkpoint_out;
    /** Iterations per checkpoint round (with -checkpoint). */
    int checkpoint_every = 64;
    /** Resume from a checkpoint written by a compatible config. */
    std::string resume_in;
    /** Run every iteration instead of stopping at the first bug. */
    bool keep_going = false;
};

/**
 * Parse argv into @p opt.
 *
 * @param[out] error The offending argument on failure.
 * @retval false on an unknown flag.
 */
inline bool
parseOptions(int argc, char **argv, Options &opt, std::string *error)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto val = [&](const char *prefix) -> const char * {
            size_t n = std::strlen(prefix);
            return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n
                                                  : nullptr;
        };
        if (arg == "-list") {
            opt.list = true;
        } else if (arg == "-cov") {
            opt.cov = true;
        } else if (arg == "-race") {
            opt.race = true;
        } else if (arg == "-stats") {
            opt.stats = true;
        } else if (arg == "-report") {
            opt.report = true;
        } else if (const char *v = val("-kernel=")) {
            opt.kernel = v;
        } else if (const char *v = val("-d=")) {
            opt.delay = std::atoi(v);
        } else if (const char *v = val("-freq=")) {
            opt.freq = std::atoi(v);
        } else if (const char *v = val("-jobs=")) {
            opt.jobs = std::atoi(v);
        } else if (const char *v = val("-trace=")) {
            opt.trace_out = v;
        } else if (const char *v = val("-html=")) {
            opt.html_out = v;
        } else if (const char *v = val("-ledger=")) {
            opt.ledger_out = v;
        } else if (const char *v = val("-chrome-trace=")) {
            opt.chrome_out = v;
        } else if (const char *v = val("-record=")) {
            opt.record_out = v;
        } else if (const char *v = val("-replay=")) {
            opt.replay_in = v;
        } else if (arg == "-minimize") {
            opt.minimize = true;
        } else if (arg == "-lint") {
            opt.lint = true;
        } else if (const char *v = val("-lint-format=")) {
            opt.lint_format = v;
        } else if (const char *v = val("-lint-out=")) {
            opt.lint_out = v;
        } else if (const char *v = val("-lint-path=")) {
            opt.lint_path = v;
        } else if (arg == "-lint-guided") {
            opt.lint_guided = true;
        } else if (const char *v = val("-lint-fail-on=")) {
            opt.lint_fail_on = v;
        } else if (arg == "-mhp-prune") {
            opt.mhp_prune = true;
        } else if (const char *v = val("-mhp-out=")) {
            opt.mhp_out = v;
        } else if (arg == "-predict") {
            opt.predict = true;
        } else if (const char *v = val("-predict-out=")) {
            opt.predict_out = v;
        } else if (arg == "-metrics") {
            opt.metrics = true;
        } else if (arg == "-profile") {
            opt.profile = true;
        } else if (arg == "-progress") {
            opt.progress = 1;
        } else if (const char *v = val("-progress=")) {
            opt.progress = std::atoi(v);
        } else if (const char *v = val("-saturation-out=")) {
            opt.saturation_out = v;
        } else if (const char *v = val("-status-out=")) {
            opt.status_out = v;
        } else if (const char *v = val("-seed=")) {
            opt.seed = std::strtoull(v, nullptr, 0);
        } else if (const char *v = val("-ring-capacity=")) {
            opt.ring_capacity = std::strtoull(v, nullptr, 0);
        } else if (arg == "-isolate") {
            opt.isolate = true;
        } else if (const char *v = val("-iter-timeout=")) {
            opt.iter_timeout = std::atoi(v);
        } else if (const char *v = val("-mem-limit=")) {
            opt.mem_limit = std::atoi(v);
        } else if (const char *v = val("-max-respawns=")) {
            opt.max_respawns = std::atoi(v);
        } else if (const char *v = val("-checkpoint=")) {
            opt.checkpoint_out = v;
        } else if (const char *v = val("-checkpoint-every=")) {
            opt.checkpoint_every = std::atoi(v);
        } else if (const char *v = val("-resume=")) {
            opt.resume_in = v;
        } else if (arg == "-keep-going") {
            opt.keep_going = true;
        } else {
            if (error)
                *error = arg;
            return false;
        }
    }
    return true;
}

} // namespace goat::cli

#endif // GOAT_TOOLS_CLI_OPTIONS_HH
