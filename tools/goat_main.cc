/**
 * @file
 * The `goat` command-line tool, mirroring the paper's artifact
 * workflow (appendix listing 3): pick a target bug kernel (the stand-
 * in for `-path`, since C++ programs are compiled in rather than
 * instrumented on disk), choose the delay bound and iteration budget,
 * and optionally measure coverage, dump the buggy trace, and print the
 * full report.
 *
 *   goat -list
 *   goat -kernel=moby_28462 -d=2 -freq=1000 -cov -report
 *   goat -kernel=all -d=3 -freq=200
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "base/fileio.hh"
#include "base/interrupt.hh"
#include "base/logging.hh"
#include "analysis/goroutine_tree.hh"
#include "analysis/html_report.hh"
#include "analysis/report.hh"
#include "analysis/stats.hh"
#include "campaign/campaign.hh"
#include "goat/engine.hh"
#include "goker/registry.hh"
#include "obs/chrome_trace.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "staticmodel/lint.hh"
#include "trace/ect_ring.hh"
#include "trace/recipe.hh"
#include "trace/serialize.hh"

#include "cli_options.hh"

using namespace goat;
using namespace goat::engine;

namespace {

using goat::cli::Options;

void
usage()
{
    std::printf(
        "Usage of goat:\n"
        "  -list           list the available bug kernels\n"
        "  -kernel=NAME    target kernel name, or 'all'\n"
        "  -d=N            number of delays (yield bound D, default 0)\n"
        "  -freq=N         frequency of executions (default 1)\n"
        "  -jobs=N         parallel campaign workers (default 1);\n"
        "                  merged results are identical for any N\n"
        "  -cov            include coverage report in evaluation\n"
        "  -race           enable happens-before race detection\n"
        "  -stats          print the buggy trace's blocking profile\n"
        "  -report         print the full deadlock report on detection\n"
        "  -trace=PATH     write the first buggy ECT to PATH\n"
        "  -html=PATH      write a self-contained HTML report to PATH\n"
        "  -ledger=PATH    append one JSON line per iteration to PATH\n"
        "  -chrome-trace=PATH\n"
        "                  write the buggy ECT as a Chrome/Perfetto\n"
        "                  trace-event file to PATH\n"
        "  -record=PATH    write the first bug's repro recipe to PATH\n"
        "                  (with -replay -minimize: the minimized recipe)\n"
        "  -replay=PATH    re-execute a recorded recipe exactly and\n"
        "                  assert the identical trace and verdict\n"
        "  -minimize       ddmin the recorded/replayed recipe down to a\n"
        "                  locally minimal yield set\n"
        "  -predict        infer blocking bugs the schedule did not\n"
        "                  take from every iteration's trace (or a\n"
        "                  -replay= trace) via predictive happens-\n"
        "                  before, and auto-confirm them by\n"
        "                  synthesized-recipe replay\n"
        "  -predict-out=PATH\n"
        "                  write the prediction findings as a JSON\n"
        "                  document to PATH (implies -predict)\n"
        "  -lint           run the static concurrency lint pass and\n"
        "                  exit (no execution)\n"
        "  -lint-format=F  lint output format: text (default), json,\n"
        "                  or sarif\n"
        "  -lint-out=PATH  write the lint report to PATH (stdout\n"
        "                  when omitted)\n"
        "  -lint-path=P    comma-separated files/directories to lint\n"
        "                  (default: the -kernel span, or all kernels)\n"
        "  -lint-guided    seed the campaign's priority yield sites\n"
        "                  from the lint findings and cross-check them\n"
        "                  against the first bug trace\n"
        "  -lint-fail-on=P exit policy for -lint: none (default;\n"
        "                  always exit 0) or warn (exit 3 when any\n"
        "                  finding survives suppression)\n"
        "  -mhp-prune      seed the campaign's priority yield sites\n"
        "                  from the static may-happen-in-parallel\n"
        "                  pair set (flow-aware fork-join analysis)\n"
        "  -mhp-out=PATH   write the kernel's MHP pair dump to PATH\n"
        "                  and exit (static mode, like -lint)\n"
        "  -metrics        print the final metrics snapshot as JSON\n"
        "  -profile        profile the runtime's hot-path stages and\n"
        "                  print per-stage latency totals\n"
        "  -progress[=N]   print a campaign heartbeat to stderr every\n"
        "                  N seconds (default 1)\n"
        "  -saturation-out=PATH\n"
        "                  write the coverage-saturation series as\n"
        "                  JSONL to PATH and HTML to PATH.html\n"
        "  -status-out=PATH\n"
        "                  atomically rewrite a JSON status snapshot\n"
        "                  at PATH while the campaign runs\n"
        "  -seed=N         seed base (default 1)\n"
        "  -ring-capacity=N\n"
        "                  ECT ring buffer rows per worker (default\n"
        "                  4096, floor 16); smaller rings bound trace\n"
        "                  memory and flush in batches\n"
        "  -isolate        run campaign shards in forked child\n"
        "                  processes; crashes become classified\n"
        "                  ledger rows and the campaign continues\n"
        "                  (also unlocks -kernel=hostile)\n"
        "  -iter-timeout=N kill a shard stuck on one iteration for N\n"
        "                  seconds and record a timeout verdict\n"
        "                  (requires -isolate)\n"
        "  -mem-limit=N    per-shard address-space ceiling in MiB;\n"
        "                  breaching it is recorded as an 'oom' crash\n"
        "                  (requires -isolate)\n"
        "  -max-respawns=N respawn budget per shard (default 16,\n"
        "                  requires -isolate)\n"
        "  -checkpoint=PATH\n"
        "                  snapshot the merged campaign state to PATH\n"
        "                  periodically (atomic tmp+rename)\n"
        "  -checkpoint-every=N\n"
        "                  iterations per checkpoint round (default 64)\n"
        "  -resume=PATH    restore a checkpoint and continue; merged\n"
        "                  results are identical to an uninterrupted\n"
        "                  run\n"
        "  -keep-going     run every iteration instead of stopping\n"
        "                  at the first bug (soak campaigns)\n");
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    std::string bad;
    if (!goat::cli::parseOptions(argc, argv, opt, &bad)) {
        std::printf("unknown flag: %s\n\n", bad.c_str());
        return false;
    }
    return true;
}

/**
 * Expand a comma-separated -lint-path= spec: directories are walked
 * recursively for C++ sources/headers; files are taken verbatim. The
 * result is sorted so the merged report is input-order independent.
 */
std::vector<std::string>
collectLintPaths(const std::string &spec)
{
    namespace fs = std::filesystem;
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= spec.size()) {
        size_t comma = spec.find(',', start);
        std::string item =
            comma == std::string::npos
                ? spec.substr(start)
                : spec.substr(start, comma - start);
        if (!item.empty()) {
            std::error_code ec;
            if (fs::is_directory(item, ec)) {
                for (const auto &entry :
                     fs::recursive_directory_iterator(item, ec)) {
                    if (!entry.is_regular_file())
                        continue;
                    std::string ext =
                        entry.path().extension().string();
                    if (ext == ".cc" || ext == ".cpp" ||
                        ext == ".hh" || ext == ".hpp")
                        out.push_back(entry.path().string());
                }
            } else {
                out.push_back(item);
            }
        }
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    std::sort(out.begin(), out.end());
    return out;
}

/**
 * -lint mode: run the static pass over -lint-path= files or kernel
 * spans and render per -lint-format=.
 * @return the process exit code (0 ok, 1 write failure, 2 usage).
 */
int
runLint(const Options &opt)
{
    if (opt.lint_fail_on != "none" && opt.lint_fail_on != "warn") {
        std::printf("unknown -lint-fail-on '%s' (none or warn)\n",
                    opt.lint_fail_on.c_str());
        return 2;
    }
    staticmodel::LintReport report;
    if (!opt.lint_path.empty()) {
        report =
            staticmodel::lintFiles(collectLintPaths(opt.lint_path));
    } else {
        auto &registry = goker::KernelRegistry::instance();
        if (opt.kernel.empty() || opt.kernel == "all") {
            for (const auto *k : registry.all())
                report.merge(goker::kernelLintReport(*k));
            report.rank();
            // Kernels sharing a source span can report the same
            // (rule, file, line) twice; keep the first.
            report.dedupe();
        } else {
            const goker::KernelInfo *k = registry.find(opt.kernel);
            if (!k) {
                std::printf("unknown kernel '%s' (try -list)\n",
                            opt.kernel.c_str());
                return 2;
            }
            report = goker::kernelLintReport(*k);
        }
    }
    std::string doc;
    if (opt.lint_format == "text")
        doc = report.textStr();
    else if (opt.lint_format == "json")
        doc = report.jsonStr();
    else if (opt.lint_format == "sarif")
        doc = report.sarifStr();
    else {
        std::printf(
            "unknown -lint-format '%s' (text, json, or sarif)\n",
            opt.lint_format.c_str());
        return 2;
    }
    // `warn` makes findings CI-visible: exit 3 when any survive
    // suppression (write failures below still win with exit 1).
    const int fail_rc =
        opt.lint_fail_on == "warn" && !report.empty() ? 3 : 0;
    if (opt.lint_out.empty()) {
        std::fwrite(doc.data(), 1, doc.size(), stdout);
        if (opt.lint_format == "text") {
            std::printf("%zu finding(s)", report.size());
            if (report.suppressed)
                std::printf(", %zu suppressed", report.suppressed);
            std::printf("\n");
        }
        return fail_rc;
    }
    if (!atomicWriteFile(opt.lint_out, doc)) {
        std::fprintf(stderr, "goat: cannot write %s\n",
                     opt.lint_out.c_str());
        return 1;
    }
    std::printf("%zu finding(s) written to %s (%s)\n", report.size(),
                opt.lint_out.c_str(), opt.lint_format.c_str());
    return fail_rc;
}

/**
 * -mhp-out= mode: dump the flow-aware MHP pair set of one kernel.
 * @return the process exit code (0 ok, 1 write failure, 2 usage).
 */
int
runMhpOut(const Options &opt)
{
    if (opt.kernel.empty() || opt.kernel == "all" ||
        opt.kernel == "hostile") {
        std::printf("-mhp-out needs a single -kernel=NAME\n");
        return 2;
    }
    const goker::KernelInfo *k =
        goker::KernelRegistry::instance().find(opt.kernel);
    if (!k) {
        std::printf("unknown kernel '%s' (try -list)\n",
                    opt.kernel.c_str());
        return 2;
    }
    std::string doc = goker::kernelMhpPairsStr(*k);
    if (!atomicWriteFile(opt.mhp_out, doc)) {
        std::fprintf(stderr, "goat: cannot write %s\n",
                     opt.mhp_out.c_str());
        return 1;
    }
    std::printf("%zu MHP pair(s) written to %s\n",
                static_cast<size_t>(
                    std::count(doc.begin(), doc.end(), '\n')),
                opt.mhp_out.c_str());
    return 0;
}

/** Print a minimized recipe's culprit sites (the debugging headline). */
void
printCulprits(const trace::Recipe &r)
{
    if (r.yields.empty()) {
        std::printf("  no injected yields needed: the seed's native "
                    "schedule noise reproduces the bug\n");
        return;
    }
    for (const trace::RecipeYield &y : r.yields)
        std::printf("  culprit yield #%llu at %s %s:%u\n",
                    static_cast<unsigned long long>(y.call),
                    y.kind.c_str(), y.file.c_str(), y.line);
}

int
runKernel(const goker::KernelInfo &kernel, const Options &opt,
          bool &artifact_fail, int &special_exit)
{
    campaign::CampaignConfig ccfg;
    GoatConfig &cfg = ccfg.engine;
    cfg.delayBound = opt.delay;
    cfg.maxIterations = opt.freq;
    cfg.collectCoverage = opt.cov;
    cfg.raceDetect = opt.race;
    cfg.covThreshold = 200.0;
    cfg.stopOnBug = !opt.keep_going;
    cfg.seedBase = opt.seed;
    cfg.ledgerPath = opt.ledger_out;
    cfg.profile = opt.profile;
    cfg.predict = opt.predict || !opt.predict_out.empty();
    cfg.staticModel = goker::kernelCuTable(kernel);
    ccfg.jobs = opt.jobs;
    ccfg.programName = kernel.name;
    ccfg.recordPath = opt.record_out;
    ccfg.minimize = opt.minimize;
    ccfg.isolate = opt.isolate;
    ccfg.iterTimeoutSecs = opt.iter_timeout;
    ccfg.memLimitMB = opt.mem_limit;
    ccfg.maxRespawns = opt.max_respawns;
    ccfg.checkpointPath = opt.checkpoint_out;
    ccfg.checkpointEvery = opt.checkpoint_every;
    ccfg.resumePath = opt.resume_in;
    if (opt.lint_guided) {
        ccfg.lint = goker::kernelLintReport(kernel);
        ccfg.lintBridge = true;
        cfg.prioritySites = ccfg.lint.sites();
    }
    if (opt.mhp_prune) {
        // Static fork-join MHP pairs: perturbation is only worth
        // spending at sites that can actually interleave. The pair
        // set is computed from source, so every worker sees the same
        // priority sites and jobs-merge identity is preserved.
        for (const SourceLoc &s : goker::kernelMhpSites(kernel))
            cfg.prioritySites.push_back(s);
    }

    // Live progress: workers bump the counters; the reporter thread
    // prints heartbeats and rewrites the status snapshot until the
    // campaign returns.
    obs::ProgressCounters progress_counters;
    std::unique_ptr<obs::ProgressReporter> progress;
    if (opt.progress > 0 || !opt.status_out.empty()) {
        obs::ProgressConfig pcfg;
        pcfg.intervalSeconds = opt.progress;
        pcfg.totalIterations = cfg.maxIterations;
        pcfg.label = kernel.name;
        pcfg.statusPath = opt.status_out;
        pcfg.haveCoverage = cfg.collectCoverage;
        progress = std::make_unique<obs::ProgressReporter>(
            pcfg, progress_counters);
        ccfg.progress = &progress_counters;
    }

    campaign::CampaignResult cres =
        campaign::runCampaign(ccfg, kernel.fn);
    GoatResult &result = cres.merged;

    if (progress) {
        progress->stop();
        if (!opt.status_out.empty() && !progress->statusOk()) {
            std::fprintf(stderr, "goat: cannot write %s\n",
                         opt.status_out.c_str());
            artifact_fail = true;
        }
    }

    if (!cres.resumeOk) {
        std::fprintf(stderr, "goat: cannot resume from %s: %s\n",
                     opt.resume_in.c_str(), cres.resumeError.c_str());
        // A fingerprint mismatch is a usage error (the flags disagree
        // with the checkpoint); an unreadable file is an I/O failure.
        special_exit =
            cres.resumeError.find("fingerprint mismatch") !=
                    std::string::npos
                ? 2
                : 1;
        return 0;
    }
    if (cres.resumed)
        std::printf("%-22s resumed from %s (%d merged iteration(s))\n",
                    "", opt.resume_in.c_str(), cres.resumeFrom);

    std::printf("%-22s ", kernel.name.c_str());
    if (result.bugFound) {
        std::printf("%s at iteration %d/%zu",
                    result.firstBug.shortStr().c_str(),
                    result.bugIteration, result.iterations.size());
    } else {
        std::printf("no bug in %zu iterations",
                    result.iterations.size());
    }
    if (opt.cov)
        std::printf(", coverage %.1f%%", result.finalCoverage);
    std::printf("\n");

    if (opt.isolate)
        std::printf("%-22s supervised: %d crash(es), %d timeout(s), "
                    "%d respawn(s)\n",
                    "", cres.crashes, cres.timeouts, cres.respawns);
    if (result.bugFound && result.firstBugRecipe.seededPolicy &&
        !result.firstBug.panicMsg.empty())
        std::printf("%-22s crash cause: %s\n", "",
                    result.firstBug.panicMsg.c_str());

    if (result.raceIteration > 0) {
        std::printf("%-22s %zu data race(s) at iteration %d\n", "",
                    result.firstRaces.races.size(),
                    result.raceIteration);
        if (opt.report)
            std::printf("%s", result.firstRaces.str().c_str());
    }
    if (opt.mhp_prune)
        std::printf("%-22s mhp-prune: %zu statically-interleavable "
                    "priority site(s)\n",
                    "", cfg.prioritySites.size());
    if (opt.lint_guided) {
        std::printf("%-22s lint-guided: %zu static warning(s)", "",
                    cres.lint.size());
        if (result.bugFound && cres.confirmedWarnings >= 0)
            std::printf(", %d confirmed by the bug trace",
                        cres.confirmedWarnings);
        std::printf("\n");
        if (opt.report && result.bugFound) {
            for (const auto &finding : cres.lint.findings)
                if (finding.confirmed)
                    std::printf("  confirmed: %s\n",
                                finding.str().c_str());
        }
    }
    if (cfg.predict) {
        const engine::PredictOutcome &po = cres.predict;
        std::printf("%-22s predicted %zu blocking bug(s), %d "
                    "confirmed by synthesized replay\n",
                    "", po.report.predictions.size(),
                    po.confirmedCount);
        if (opt.report && po.report.any())
            std::printf("%s", po.report.str().c_str());
        if (!opt.predict_out.empty()) {
            std::string doc = po.report.jsonDocStr(kernel.name);
            doc += '\n';
            if (atomicWriteFile(opt.predict_out, doc)) {
                std::printf("prediction findings written to %s\n",
                            opt.predict_out.c_str());
            } else {
                std::fprintf(stderr, "goat: cannot write %s\n",
                             opt.predict_out.c_str());
                artifact_fail = true;
            }
        }
    }
    // A supervised crash/timeout bug has no trace: the child died (or
    // was killed) before one could be shipped. Trace-derived artifacts
    // are skipped; the seeded-policy recipe (-record) still replays it.
    const bool traceless =
        result.bugFound && result.firstBugRecipe.seededPolicy;
    if (traceless &&
        (opt.stats || !opt.html_out.empty() || !opt.trace_out.empty() ||
         !opt.chrome_out.empty()))
        std::fprintf(stderr,
                     "goat: first bug is a supervised %s; skipping "
                     "trace-derived outputs (-stats/-trace/-html/"
                     "-chrome-trace)\n",
                     result.firstBugRecipe.verdict.c_str());

    if (result.bugFound && opt.report && !result.report.empty())
        std::printf("\n%s\n", result.report.c_str());
    if (result.bugFound && opt.stats && !traceless) {
        std::printf("\n-- trace statistics --\n%s",
                    analysis::computeStats(result.firstBugEct)
                        .str()
                        .c_str());
    }
    if (result.bugFound && !opt.html_out.empty() && !traceless) {
        analysis::GoroutineTree tree(result.firstBugEct);
        std::string html = analysis::htmlReportStr(
            kernel.name, result.firstBugEct, tree, result.firstBug,
            opt.cov ? &cres.coverage : nullptr);
        if (atomicWriteFile(opt.html_out, html)) {
            std::printf("HTML report written to %s\n",
                        opt.html_out.c_str());
        } else {
            std::fprintf(stderr, "goat: cannot write %s\n",
                         opt.html_out.c_str());
            artifact_fail = true;
        }
    }
    if (result.bugFound && !opt.trace_out.empty() && !traceless) {
        if (trace::writeEctFile(result.firstBugEct, opt.trace_out)) {
            std::printf("buggy ECT written to %s\n",
                        opt.trace_out.c_str());
        } else {
            std::fprintf(stderr, "goat: cannot write %s\n",
                         opt.trace_out.c_str());
            artifact_fail = true;
        }
    }
    if (result.bugFound && !opt.chrome_out.empty() && !traceless) {
        if (obs::writeChromeTraceFile(result.firstBugEct,
                                      opt.chrome_out)) {
            std::printf("chrome trace written to %s\n",
                        opt.chrome_out.c_str());
        } else {
            std::fprintf(stderr, "goat: cannot write %s\n",
                         opt.chrome_out.c_str());
            artifact_fail = true;
        }
    }
    if (result.bugFound && !opt.record_out.empty()) {
        if (cres.recordOk) {
            std::printf("repro recipe written to %s (%zu yields)\n",
                        cres.recipePath.c_str(),
                        result.firstBugRecipe.yields.size());
        } else {
            std::fprintf(stderr, "goat: cannot write %s\n",
                         opt.record_out.c_str());
            artifact_fail = true;
        }
    }
    if (result.bugFound && opt.minimize && traceless) {
        std::printf("minimize skipped: supervised %s bugs replay via "
                    "their seeded-policy recipe\n",
                    result.firstBugRecipe.verdict.c_str());
    } else if (result.bugFound && opt.minimize) {
        const engine::MinimizeResult &mr = cres.minimize;
        if (mr.reproduced) {
            std::printf(
                "minimized schedule: %d -> %zu yield(s) in %d "
                "replay(s)\n",
                mr.originalYields, mr.minimized.yields.size(),
                mr.replays);
            printCulprits(mr.minimized);
            if (!cres.minimizedRecipePath.empty())
                std::printf("minimized recipe written to %s\n",
                            cres.minimizedRecipePath.c_str());
        } else {
            std::fprintf(stderr,
                         "goat: minimize: recorded recipe did not "
                         "reproduce deterministically\n");
            artifact_fail = true;
        }
    }
    if (!opt.ledger_out.empty() && !cres.ledgerOk) {
        std::fprintf(stderr, "goat: cannot write %s\n",
                     opt.ledger_out.c_str());
        artifact_fail = true;
    }
    if (!opt.checkpoint_out.empty() && !cres.checkpointOk) {
        std::fprintf(stderr, "goat: cannot write %s\n",
                     opt.checkpoint_out.c_str());
        artifact_fail = true;
    }
    if (cres.interrupted) {
        std::fprintf(stderr,
                     "goat: interrupted by signal %d; merged %d "
                     "finished iteration(s)\n",
                     cres.interruptSig, cres.cutoffIteration);
        special_exit = 128 + cres.interruptSig;
    }
    if (!opt.saturation_out.empty()) {
        if (cres.merged.saturation.writeFiles(opt.saturation_out,
                                              kernel.name)) {
            std::printf("saturation series written to %s (+ .html)\n",
                        opt.saturation_out.c_str());
        } else {
            std::fprintf(stderr, "goat: cannot write %s\n",
                         opt.saturation_out.c_str());
            artifact_fail = true;
        }
    }
    if (opt.profile) {
        std::printf("\n-- stage profile (canonical fold, %d merged "
                    "iteration(s)) --\n%s",
                    cres.cutoffIteration,
                    cres.merged.profile.tableStr().c_str());
    }
    if (opt.cov && opt.report) {
        std::printf("\n-- coverage requirements --\n%s",
                    cres.coverage.tableStr().c_str());
    }
    return result.bugFound ? 1 : 0;
}

/**
 * Replay (and optionally minimize) a recorded recipe on one kernel.
 * @return the process exit code.
 */
int
runReplay(const goker::KernelInfo &kernel, const Options &opt)
{
    trace::Recipe recipe;
    if (!trace::readRecipeFile(opt.replay_in, recipe)) {
        std::fprintf(stderr, "goat: cannot read recipe %s\n",
                     opt.replay_in.c_str());
        return 1;
    }
    engine::ReplayResult rr = replayRecipe(kernel.fn, recipe);
    std::printf("%-22s replay %s: outcome=%s verdict=%s events=%llu "
                "yields=%zu\n",
                kernel.name.c_str(),
                rr.matched ? "OK" : "MISMATCH",
                rr.sr.recipe.outcome.c_str(),
                rr.sr.recipe.verdict.c_str(),
                static_cast<unsigned long long>(rr.sr.recipe.ectEvents),
                rr.sr.recipe.yields.size());
    if (!rr.matched)
        std::fprintf(stderr, "goat: replay mismatch: %s\n",
                     rr.mismatch.c_str());
    if (opt.report && rr.buggy) {
        analysis::GoroutineTree tree(rr.sr.ect);
        std::printf("\n%s\n",
                    analysis::deadlockReportStr(rr.sr.ect, tree,
                                                rr.sr.dl)
                        .c_str());
    }
    int rc = rr.matched ? 0 : 1;

    if (opt.predict || !opt.predict_out.empty()) {
        // Predict over the replayed trace; the replay's own recipe is
        // the confirmation base, so confirming schedules are
        // synthesized relative to the recorded interleaving.
        analysis::PredictionReport pr =
            analysis::predictBlockingBugs(rr.sr.ect);
        engine::PredictOutcome po =
            engine::confirmPredictions(kernel.fn, rr.sr.recipe,
                                       std::move(pr));
        std::printf("predicted %zu blocking bug(s), %d confirmed by "
                    "synthesized replay\n",
                    po.report.predictions.size(), po.confirmedCount);
        if (po.report.any())
            std::printf("%s", po.report.str().c_str());
        if (!opt.predict_out.empty()) {
            std::string doc = po.report.jsonDocStr(kernel.name);
            doc += '\n';
            if (atomicWriteFile(opt.predict_out, doc)) {
                std::printf("prediction findings written to %s\n",
                            opt.predict_out.c_str());
            } else {
                std::fprintf(stderr, "goat: cannot write %s\n",
                             opt.predict_out.c_str());
                rc = 1;
            }
        }
    }

    if (opt.minimize) {
        engine::MinimizeResult mr = minimizeRecipe(kernel.fn, recipe);
        if (!mr.reproduced) {
            std::fprintf(stderr,
                         "goat: minimize: recipe is not buggy or does "
                         "not reproduce\n");
            rc = 1;
        } else {
            std::printf(
                "minimized schedule: %d -> %zu yield(s) in %d "
                "replay(s)\n",
                mr.originalYields, mr.minimized.yields.size(),
                mr.replays);
            printCulprits(mr.minimized);
            if (!opt.record_out.empty()) {
                if (trace::writeRecipeFile(mr.minimized,
                                           opt.record_out)) {
                    std::printf("minimized recipe written to %s\n",
                                opt.record_out.c_str());
                } else {
                    std::fprintf(stderr, "goat: cannot write %s\n",
                                 opt.record_out.c_str());
                    rc = 1;
                }
            }
        }
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage();
        return 2;
    }

    // Fault-tolerance flag compatibility: the watchdog/mem-limit knobs
    // only exist under the supervisor, and isolation/checkpointing are
    // incompatible with the modes that need live in-process traces.
    if (!opt.isolate &&
        (opt.iter_timeout > 0 || opt.mem_limit > 0 ||
         opt.max_respawns != 16)) {
        std::printf("-iter-timeout/-mem-limit/-max-respawns require "
                    "-isolate\n");
        return 2;
    }
    if (opt.isolate &&
        (opt.race || opt.predict || !opt.predict_out.empty() ||
         opt.profile || !opt.replay_in.empty())) {
        std::printf("-isolate is incompatible with "
                    "-race/-predict/-profile/-replay\n");
        return 2;
    }
    if ((!opt.checkpoint_out.empty() || !opt.resume_in.empty()) &&
        (opt.predict || !opt.predict_out.empty() || opt.profile)) {
        std::printf("-checkpoint/-resume are incompatible with "
                    "-predict/-profile\n");
        return 2;
    }
    if ((!opt.checkpoint_out.empty() || !opt.resume_in.empty()) &&
        (opt.kernel == "all" || opt.kernel == "hostile")) {
        std::printf("-checkpoint/-resume need a single kernel, not a "
                    "sweep\n");
        return 2;
    }

    if (opt.ring_capacity)
        trace::setDefaultEctRingCapacity(opt.ring_capacity);
    auto &registry = goker::KernelRegistry::instance();

    if (opt.list) {
        std::printf("%-22s %-12s %-14s %s\n", "kernel", "project",
                    "class", "description");
        for (const auto *k : registry.all())
            std::printf("%-22s %-12s %-14s %s\n", k->name.c_str(),
                        k->project.c_str(), bugClassName(k->bugClass),
                        k->description.substr(0, 60).c_str());
        for (const auto *k : registry.allHostile())
            std::printf("%-22s %-12s %-14s %s\n", k->name.c_str(),
                        k->project.c_str(), "hostile",
                        k->description.substr(0, 60).c_str());
        return 0;
    }
    if (opt.lint) {
        // Pure static mode: no kernel execution at all.
        return runLint(opt);
    }
    if (!opt.mhp_out.empty()) {
        // Also static: dump the MHP pair set and exit.
        return runMhpOut(opt);
    }
    if (opt.kernel.empty()) {
        usage();
        return 2;
    }
    setQuiet(true);
    installInterruptHandlers();

    if (!opt.replay_in.empty()) {
        // Replay mode: re-execute one recorded recipe on one kernel.
        if (opt.kernel == "all") {
            std::printf("-replay needs a single kernel, not 'all'\n");
            return 2;
        }
        const goker::KernelInfo *k = registry.find(opt.kernel);
        if (!k) {
            std::printf("unknown kernel '%s' (try -list)\n",
                        opt.kernel.c_str());
            return 2;
        }
        return runReplay(*k, opt);
    }

    bool artifact_fail = false;
    int special_exit = 0;
    if (opt.kernel == "all") {
        int bugs = 0;
        for (const auto *k : registry.all()) {
            bugs += runKernel(*k, opt, artifact_fail, special_exit);
            if (special_exit)
                return special_exit;
        }
        std::printf("\n%d of %zu kernels exposed their bug\n", bugs,
                    registry.all().size());
        if (opt.metrics)
            std::printf("%s\n",
                        obs::Registry::global().snapshot().jsonStr().c_str());
        return artifact_fail ? 1 : 0;
    }
    if (opt.kernel == "hostile") {
        // The fault-injection sweep: only meaningful supervised.
        if (!opt.isolate) {
            std::printf("-kernel=hostile requires -isolate (these "
                        "kernels crash the process on purpose)\n");
            return 2;
        }
        int losses = 0;
        for (const auto *k : registry.allHostile()) {
            losses += runKernel(*k, opt, artifact_fail, special_exit);
            if (special_exit)
                return special_exit;
        }
        std::printf("\n%d of %zu hostile kernels exposed a failure\n",
                    losses, registry.allHostile().size());
        if (opt.metrics)
            std::printf("%s\n",
                        obs::Registry::global().snapshot().jsonStr().c_str());
        return artifact_fail ? 1 : 0;
    }
    const goker::KernelInfo *k = registry.find(opt.kernel);
    if (!k) {
        std::printf("unknown kernel '%s' (try -list)\n",
                    opt.kernel.c_str());
        return 2;
    }
    if (k->hostile && !opt.isolate) {
        std::printf("kernel '%s' is hostile and requires -isolate\n",
                    opt.kernel.c_str());
        return 2;
    }
    runKernel(*k, opt, artifact_fail, special_exit);
    if (special_exit)
        return special_exit;
    if (opt.metrics)
        std::printf("%s\n",
                    obs::Registry::global().snapshot().jsonStr().c_str());
    return artifact_fail ? 1 : 0;
}
