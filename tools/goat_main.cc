/**
 * @file
 * The `goat` command-line tool, mirroring the paper's artifact
 * workflow (appendix listing 3): pick a target bug kernel (the stand-
 * in for `-path`, since C++ programs are compiled in rather than
 * instrumented on disk), choose the delay bound and iteration budget,
 * and optionally measure coverage, dump the buggy trace, and print the
 * full report.
 *
 *   goat -list
 *   goat -kernel=moby_28462 -d=2 -freq=1000 -cov -report
 *   goat -kernel=all -d=3 -freq=200
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "base/logging.hh"
#include "analysis/goroutine_tree.hh"
#include "analysis/html_report.hh"
#include "analysis/stats.hh"
#include "campaign/campaign.hh"
#include "goat/engine.hh"
#include "goker/registry.hh"
#include "obs/chrome_trace.hh"
#include "obs/metrics.hh"
#include "trace/serialize.hh"

#include "cli_options.hh"

using namespace goat;
using namespace goat::engine;

namespace {

using goat::cli::Options;

void
usage()
{
    std::printf(
        "Usage of goat:\n"
        "  -list           list the available bug kernels\n"
        "  -kernel=NAME    target kernel name, or 'all'\n"
        "  -d=N            number of delays (yield bound D, default 0)\n"
        "  -freq=N         frequency of executions (default 1)\n"
        "  -jobs=N         parallel campaign workers (default 1);\n"
        "                  merged results are identical for any N\n"
        "  -cov            include coverage report in evaluation\n"
        "  -race           enable happens-before race detection\n"
        "  -stats          print the buggy trace's blocking profile\n"
        "  -report         print the full deadlock report on detection\n"
        "  -trace=PATH     write the first buggy ECT to PATH\n"
        "  -html=PATH      write a self-contained HTML report to PATH\n"
        "  -ledger=PATH    append one JSON line per iteration to PATH\n"
        "  -chrome-trace=PATH\n"
        "                  write the buggy ECT as a Chrome/Perfetto\n"
        "                  trace-event file to PATH\n"
        "  -metrics        print the final metrics snapshot as JSON\n"
        "  -seed=N         seed base (default 1)\n");
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    std::string bad;
    if (!goat::cli::parseOptions(argc, argv, opt, &bad)) {
        std::printf("unknown flag: %s\n\n", bad.c_str());
        return false;
    }
    return true;
}

int
runKernel(const goker::KernelInfo &kernel, const Options &opt)
{
    campaign::CampaignConfig ccfg;
    GoatConfig &cfg = ccfg.engine;
    cfg.delayBound = opt.delay;
    cfg.maxIterations = opt.freq;
    cfg.collectCoverage = opt.cov;
    cfg.raceDetect = opt.race;
    cfg.covThreshold = 200.0;
    cfg.seedBase = opt.seed;
    cfg.ledgerPath = opt.ledger_out;
    cfg.staticModel = goker::kernelCuTable(kernel);
    ccfg.jobs = opt.jobs;
    campaign::CampaignResult cres =
        campaign::runCampaign(ccfg, kernel.fn);
    GoatResult &result = cres.merged;

    std::printf("%-22s ", kernel.name.c_str());
    if (result.bugFound) {
        std::printf("%s at iteration %d/%zu",
                    result.firstBug.shortStr().c_str(),
                    result.bugIteration, result.iterations.size());
    } else {
        std::printf("no bug in %zu iterations",
                    result.iterations.size());
    }
    if (opt.cov)
        std::printf(", coverage %.1f%%", result.finalCoverage);
    std::printf("\n");

    if (result.raceIteration > 0) {
        std::printf("%-22s %zu data race(s) at iteration %d\n", "",
                    result.firstRaces.races.size(),
                    result.raceIteration);
        if (opt.report)
            std::printf("%s", result.firstRaces.str().c_str());
    }
    if (result.bugFound && opt.report && !result.report.empty())
        std::printf("\n%s\n", result.report.c_str());
    if (result.bugFound && opt.stats) {
        std::printf("\n-- trace statistics --\n%s",
                    analysis::computeStats(result.firstBugEct)
                        .str()
                        .c_str());
    }
    if (result.bugFound && !opt.html_out.empty()) {
        analysis::GoroutineTree tree(result.firstBugEct);
        std::string html = analysis::htmlReportStr(
            kernel.name, result.firstBugEct, tree, result.firstBug,
            opt.cov ? &cres.coverage : nullptr);
        std::FILE *f = std::fopen(opt.html_out.c_str(), "w");
        if (f) {
            std::fwrite(html.data(), 1, html.size(), f);
            std::fclose(f);
            std::printf("HTML report written to %s\n",
                        opt.html_out.c_str());
        } else {
            std::printf("cannot write %s\n", opt.html_out.c_str());
        }
    }
    if (result.bugFound && !opt.trace_out.empty()) {
        if (trace::writeEctFile(result.firstBugEct, opt.trace_out))
            std::printf("buggy ECT written to %s\n",
                        opt.trace_out.c_str());
        else
            std::printf("cannot write %s\n", opt.trace_out.c_str());
    }
    if (result.bugFound && !opt.chrome_out.empty()) {
        if (obs::writeChromeTraceFile(result.firstBugEct,
                                      opt.chrome_out))
            std::printf("chrome trace written to %s\n",
                        opt.chrome_out.c_str());
        else
            std::printf("cannot write %s\n", opt.chrome_out.c_str());
    }
    if (opt.cov && opt.report) {
        std::printf("\n-- coverage requirements --\n%s",
                    cres.coverage.tableStr().c_str());
    }
    return result.bugFound ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage();
        return 2;
    }
    auto &registry = goker::KernelRegistry::instance();

    if (opt.list) {
        std::printf("%-22s %-12s %-14s %s\n", "kernel", "project",
                    "class", "description");
        for (const auto *k : registry.all())
            std::printf("%-22s %-12s %-14s %s\n", k->name.c_str(),
                        k->project.c_str(), bugClassName(k->bugClass),
                        k->description.substr(0, 60).c_str());
        return 0;
    }
    if (opt.kernel.empty()) {
        usage();
        return 2;
    }
    setQuiet(true);

    if (opt.kernel == "all") {
        int bugs = 0;
        for (const auto *k : registry.all())
            bugs += runKernel(*k, opt);
        std::printf("\n%d of %zu kernels exposed their bug\n", bugs,
                    registry.size());
        if (opt.metrics)
            std::printf("%s\n",
                        obs::Registry::global().snapshot().jsonStr().c_str());
        return 0;
    }
    const goker::KernelInfo *k = registry.find(opt.kernel);
    if (!k) {
        std::printf("unknown kernel '%s' (try -list)\n",
                    opt.kernel.c_str());
        return 2;
    }
    runKernel(*k, opt);
    if (opt.metrics)
        std::printf("%s\n",
                    obs::Registry::global().snapshot().jsonStr().c_str());
    return 0;
}
