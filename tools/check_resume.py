#!/usr/bin/env python3
"""Fault-tolerance validator: checkpoint/resume and graceful signals.

Drives the goat CLI through the failure scenarios the campaign
supervisor and checkpoint subsystem exist for, and asserts the core
durability contract: a campaign that is killed partway through and
resumed from its last checkpoint produces a merged ledger whose
canonical view is IDENTICAL to an uninterrupted run.

Scenarios:

  * baseline: an uninterrupted -keep-going campaign at -jobs=1 is the
    reference ledger;
  * SIGKILL at a random mid-campaign moment, then -resume: the resumed
    run's ledger is canonical-identical to the reference, at -jobs=1
    and at -jobs=4 (and a -jobs=4 checkpoint resumes at -jobs=1 —
    the fingerprint deliberately excludes the worker count);
  * SIGTERM mid-campaign: graceful flush — the process exits 143
    (128+SIGTERM), the checkpoint and the ledger agree on the merged
    prefix, the prefix is canonical with the reference, and the
    checkpoint resumes cleanly;
  * a checkpoint written under different campaign flags is refused
    with exit 2 (fingerprint mismatch); an unreadable -resume path is
    exit 1.

Usage: check_resume.py /path/to/goat

Registered as the `check_resume` ctest; exits non-zero (with a
diagnostic on stderr) on the first violation.
"""

import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

KERNEL = "cockroach_7504"
DELAY = 1
ITERS = 20000
EVERY = 512


def fail(msg):
    print(f"check_resume: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def canonical_rows(path):
    """Ledger rows minus host-dependent and placement fields (same
    definition as check_ledger.py)."""
    rows = []
    for line in path.read_text().splitlines():
        obj = json.loads(line)
        for key in ("wall_us", "metrics", "worker", "wseq", "recipe",
                    "respawns"):
            obj.pop(key, None)
        for hist in obj.get("profile", {}).values():
            hist.pop("sum_ns", None)
        rows.append(obj)
    return rows


def cmd(goat, ledger, jobs=1, checkpoint=None, resume=None,
        iters=ITERS):
    c = [goat, f"-kernel={KERNEL}", f"-d={DELAY}", f"-freq={iters}",
         "-keep-going", f"-jobs={jobs}", f"-ledger={ledger}"]
    if checkpoint is not None:
        c += [f"-checkpoint={checkpoint}", f"-checkpoint-every={EVERY}"]
    if resume is not None:
        c += [f"-resume={resume}"]
    return c


def run(goat, ledger, **kw):
    proc = subprocess.run(cmd(goat, ledger, **kw),
                          capture_output=True, text=True, timeout=120)
    if proc.returncode != 0:
        fail(f"goat exited {proc.returncode}: {proc.stdout}"
             f"{proc.stderr}")


def kill_mid_run(goat, ledger, checkpoint, sig, jobs=1):
    """Start a checkpointed campaign, deliver @sig at a random moment
    after the first checkpoint lands, and return the exit status."""
    proc = subprocess.Popen(cmd(goat, ledger, jobs=jobs,
                                checkpoint=checkpoint),
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if checkpoint.exists():
            break
        if proc.poll() is not None:
            fail(f"campaign exited {proc.returncode} before its first "
                 f"checkpoint")
        time.sleep(0.01)
    else:
        fail("no checkpoint appeared within 60s")
    # A random extra beat so the kill lands at an arbitrary point in
    # some later round, not right at the first snapshot.
    time.sleep(random.uniform(0.0, 0.3))
    if proc.poll() is None:
        proc.send_signal(sig)
    proc.wait(timeout=60)
    return proc.returncode


def read_cursor(checkpoint):
    for line in checkpoint.read_text().splitlines():
        if line.startswith("cursor "):
            return int(line.split()[1])
    fail(f"checkpoint {checkpoint} has no cursor line")


def main():
    if len(sys.argv) < 2:
        fail("usage: check_resume.py /path/to/goat")
    goat = sys.argv[1]
    random.seed()  # wall-clock entropy is the point: vary the kill

    with tempfile.TemporaryDirectory(prefix="goat_resume_") as tmp:
        tmp = Path(tmp)
        ref_ledger = tmp / "ref.jsonl"
        run(goat, ref_ledger)
        ref = canonical_rows(ref_ledger)
        if len(ref) != ITERS:
            fail(f"reference campaign has {len(ref)} rows, expected "
                 f"{ITERS} (is -keep-going broken?)")

        # SIGKILL + resume at the same worker count, for jobs=1 and 4.
        for jobs in (1, 4):
            ck = tmp / f"kill_j{jobs}.ck"
            part = tmp / f"part_j{jobs}.jsonl"
            rc = kill_mid_run(goat, part, ck, signal.SIGKILL,
                              jobs=jobs)
            if rc != -signal.SIGKILL:
                fail(f"SIGKILL run exited {rc}, expected "
                     f"{-signal.SIGKILL}")
            cursor = read_cursor(ck)
            if not 0 < cursor < ITERS:
                fail(f"jobs={jobs} kill landed outside the campaign "
                     f"(cursor {cursor}) — timing too coarse")
            res = tmp / f"res_j{jobs}.jsonl"
            run(goat, res, jobs=jobs, resume=ck)
            if canonical_rows(res) != ref:
                fail(f"jobs={jobs} killed+resumed ledger differs from "
                     f"the uninterrupted run (cursor was {cursor})")
            print(f"check_resume: OK — SIGKILL at iteration {cursor}, "
                  f"resume at -jobs={jobs} canonical-identical "
                  f"({ITERS} rows)")

        # Cross-worker-count resume: the fingerprint excludes jobs, so
        # the jobs=4 checkpoint must resume at jobs=1 with the same
        # canonical result.
        cross = tmp / "cross.jsonl"
        run(goat, cross, jobs=1, resume=tmp / "kill_j4.ck")
        if canonical_rows(cross) != ref:
            fail("-jobs=4 checkpoint resumed at -jobs=1 differs from "
                 "the uninterrupted run")
        print("check_resume: OK — -jobs=4 checkpoint resumes at "
              "-jobs=1 canonical-identical")

        # SIGTERM: graceful flush. Exit 143, ledger and checkpoint
        # agree on the merged prefix, prefix canonical, resumable.
        ckg = tmp / "term.ck"
        partg = tmp / "term.jsonl"
        rc = kill_mid_run(goat, partg, ckg, signal.SIGTERM)
        if rc != 128 + signal.SIGTERM:
            fail(f"SIGTERM run exited {rc}, expected "
                 f"{128 + signal.SIGTERM}")
        cursor = read_cursor(ckg)
        flushed = canonical_rows(partg)
        if len(flushed) != cursor:
            fail(f"SIGTERM flush wrote {len(flushed)} ledger rows but "
                 f"checkpointed cursor {cursor}")
        if flushed != ref[:cursor]:
            fail("SIGTERM-flushed ledger prefix is not canonical with "
                 "the uninterrupted run")
        resg = tmp / "term_res.jsonl"
        run(goat, resg, resume=ckg)
        if canonical_rows(resg) != ref:
            fail("resume after SIGTERM differs from the uninterrupted "
                 "run")
        print(f"check_resume: OK — SIGTERM at iteration {cursor}: "
              f"exit 143, ledger/checkpoint prefix agree, resume "
              f"canonical-identical")

        # Refusal paths: wrong-config checkpoint is a usage error (2),
        # unreadable checkpoint an I/O error (1).
        proc = subprocess.run(
            [goat, f"-kernel={KERNEL}", "-d=2", f"-freq={ITERS}",
             "-keep-going", f"-resume={ckg}",
             f"-ledger={tmp / 'refused.jsonl'}"],
            capture_output=True, text=True, timeout=120)
        if proc.returncode != 2:
            fail(f"fingerprint-mismatch resume exited "
                 f"{proc.returncode}, expected 2")
        if "fingerprint" not in proc.stderr + proc.stdout:
            fail("fingerprint-mismatch refusal does not mention the "
                 "fingerprint")
        proc = subprocess.run(
            [goat, f"-kernel={KERNEL}", f"-d={DELAY}", "-freq=10",
             f"-resume={tmp / 'missing.ck'}"],
            capture_output=True, text=True, timeout=120)
        if proc.returncode != 1:
            fail(f"unreadable-checkpoint resume exited "
                 f"{proc.returncode}, expected 1")
        print("check_resume: OK — mismatched checkpoint refused "
              "(exit 2), unreadable checkpoint is exit 1")


if __name__ == "__main__":
    main()
