#!/usr/bin/env python3
"""End-to-end validator for the goat campaign telemetry.

Runs a tiny campaign through the goat CLI with -ledger and
-chrome-trace, then validates both artifacts with a real JSON parser:

  * the ledger is JSONL — one valid object per iteration, with the
    stable key set documented in src/obs/ledger.hh and sane types;
  * the Chrome trace is one JSON document in trace_event format, with
    a named track per goroutine, duration events for blocking
    episodes, and s/f flow pairs that share an id;
  * a second campaign at -jobs=4 yields worker-tagged rows (paired
    worker/wseq, monotone per-worker wseq, no duplicate global ids)
    whose canonical content matches the -jobs=1 ledger exactly;
  * with -record, the bug row carries the recipe path, the recipe file
    is byte-identical between -jobs=1 and -jobs=4, and replaying it
    through `goat -replay=` exits 0 (exact reproduction asserted by
    the binary itself);
  * with -profile, every row carries a "profile" object of per-stage
    {total,count,sum_ns} rows whose deterministic subset (total and
    the counter-sampled count — sum_ns is wall-clock noise) is
    byte-identical between -jobs=1 and -jobs=4;
  * with -predict, every row carries a "predicted" count, rows whose
    iteration contributed confirmed predictions carry
    "predicted_confirmed" (never above "predicted"), and both the
    canonical ledger rows and the -predict-out findings document are
    byte-identical between -jobs=1 and -jobs=4;
  * with -cov, rows carry the paired covered/req_total counters
    (covered monotone nondecreasing, never above req_total), and the
    -saturation-out JSONL series is byte-identical between -jobs=1
    and -jobs=4 with its standalone HTML report alongside;
  * an -isolate campaign (forked shards under the supervisor) yields
    the same canonical rows as the in-process -jobs=1 run;
  * a supervised campaign over the hostile_segfault fixture survives
    real child crashes: exit 0, classified "crashed" rows carrying
    crash_cause/respawns, and passing rows interleaved.

Usage: check_ledger.py /path/to/goat [kernel]

Registered as the `check_ledger` ctest; exits non-zero (with a
diagnostic on stderr) on the first violation.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

LEDGER_KEYS = {
    "iter": int,
    "seed": int,
    "delay_bound": int,
    "outcome": str,
    "verdict": str,
    "bug": bool,
    "steps": int,
    "coverage_pct": float,
    "wall_us": int,
    "metrics": dict,
}


PROFILE_STAGES = {"fiber_switch", "chan_op", "trace_append",
                  "perturb_decision", "merge"}


def fail(msg):
    print(f"check_ledger: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_counter(i, obj, key, minimum=0):
    v = obj[key]
    if not isinstance(v, int) or isinstance(v, bool) or v < minimum:
        fail(f"ledger line {i}: bad {key} {v!r}")
    return v


def check_ledger(path, expect_min_lines):
    lines = path.read_text().splitlines()
    if len(lines) < expect_min_lines:
        fail(f"ledger has {len(lines)} lines, expected >= {expect_min_lines}")
    prev_iter = 0
    seen_iters = set()
    wseq_of_worker = {}
    prev_covered = 0
    for i, line in enumerate(lines, 1):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"ledger line {i} is not valid JSON: {e}")
        for key, typ in LEDGER_KEYS.items():
            if key == "coverage_pct" and key not in obj:
                continue  # omitted when coverage is not measured
            if key not in obj:
                fail(f"ledger line {i} missing key '{key}': {line}")
            val = obj[key]
            if typ is float:
                ok = isinstance(val, (int, float)) and not isinstance(val, bool)
            elif typ is int:
                ok = isinstance(val, int) and not isinstance(val, bool)
            else:
                ok = isinstance(val, typ)
            if not ok:
                fail(f"ledger line {i} key '{key}' has type "
                     f"{type(val).__name__}, expected {typ.__name__}")
        if obj["iter"] != prev_iter + 1:
            fail(f"ledger line {i}: iter {obj['iter']} does not follow "
                 f"{prev_iter}")
        if obj["iter"] in seen_iters:
            fail(f"ledger line {i}: duplicate global iter {obj['iter']}")
        seen_iters.add(obj["iter"])
        prev_iter = obj["iter"]
        # Worker-tagged campaign rows: "worker" and "wseq" come as a
        # pair, the worker id is a 0-based int, and each worker's wseq
        # is its own strictly monotone 1-based sequence.
        if ("worker" in obj) != ("wseq" in obj):
            fail(f"ledger line {i}: worker/wseq must appear together")
        if "worker" in obj:
            w, s = obj["worker"], obj["wseq"]
            if not isinstance(w, int) or isinstance(w, bool) or w < 0:
                fail(f"ledger line {i}: bad worker id {w!r}")
            if not isinstance(s, int) or isinstance(s, bool) or s < 1:
                fail(f"ledger line {i}: bad wseq {s!r}")
            if s <= wseq_of_worker.get(w, 0):
                fail(f"ledger line {i}: worker {w} wseq {s} not "
                     f"greater than {wseq_of_worker[w]}")
            wseq_of_worker[w] = s
        metrics = obj["metrics"]
        for section in ("counters", "gauges", "histograms"):
            if section not in metrics:
                fail(f"ledger line {i} metrics missing '{section}'")
        if obj["bug"] and obj["verdict"] == "pass" \
                and obj["outcome"] == "ok":
            fail(f"ledger line {i}: bug=true but outcome/verdict clean")
        # Supervised-loss rows (forked shard died or tripped the
        # watchdog): synthesized by the parent, so no steps/schedule,
        # always flagged as bugs, and the only rows that may carry
        # crash_cause / respawns.
        loss = obj["outcome"] in ("crashed", "timeout")
        if loss:
            want = "crash" if obj["outcome"] == "crashed" else "timeout"
            if obj["verdict"] != want:
                fail(f"ledger line {i}: {obj['outcome']} row has "
                     f"verdict {obj['verdict']!r}, expected {want!r}")
            if not obj["bug"]:
                fail(f"ledger line {i}: supervised loss with bug=false")
            if obj["steps"] != 0:
                fail(f"ledger line {i}: loss row has steps "
                     f"{obj['steps']}, expected 0")
        if "crash_cause" in obj:
            v = obj["crash_cause"]
            if obj["outcome"] != "crashed":
                fail(f"ledger line {i}: crash_cause on outcome "
                     f"{obj['outcome']!r}")
            if not isinstance(v, str) or not v:
                fail(f"ledger line {i}: bad crash_cause {v!r}")
        if "respawns" in obj:
            if not loss:
                fail(f"ledger line {i}: respawns on a non-loss row")
            check_counter(i, obj, "respawns")
        # Repro fields are optional and only legal on bug rows.
        if "recipe" in obj:
            if not obj["bug"]:
                fail(f"ledger line {i}: recipe on a non-bug row")
            if not isinstance(obj["recipe"], str) or not obj["recipe"]:
                fail(f"ledger line {i}: bad recipe path {obj['recipe']!r}")
        if "min_yields" in obj:
            if not obj["bug"]:
                fail(f"ledger line {i}: min_yields on a non-bug row")
            v = obj["min_yields"]
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                fail(f"ledger line {i}: bad min_yields {v!r}")
        # Saturation counters: covered/req_total come as a pair of
        # cumulative ints derived from the canonical merged coverage
        # fold — covered never exceeds the requirement universe and
        # never shrinks (the universe itself may grow).
        if ("covered" in obj) != ("req_total" in obj):
            fail(f"ledger line {i}: covered/req_total must pair")
        if "covered" in obj:
            if "coverage_pct" not in obj:
                fail(f"ledger line {i}: covered without coverage_pct")
            cov = check_counter(i, obj, "covered")
            tot = check_counter(i, obj, "req_total")
            if cov > tot:
                fail(f"ledger line {i}: covered {cov} > req_total {tot}")
            if cov < prev_covered:
                fail(f"ledger line {i}: covered {cov} shrank from "
                     f"{prev_covered}")
            prev_covered = cov
        # Stage-profiler rows: per-stage {total,count,sum_ns}, stage
        # names from the fixed enum, sampled count never above the
        # entry total.
        if "profile" in obj:
            prof = obj["profile"]
            if not isinstance(prof, dict) or not prof:
                fail(f"ledger line {i}: bad profile object {prof!r}")
            for stage, hist in prof.items():
                if stage not in PROFILE_STAGES:
                    fail(f"ledger line {i}: unknown profile stage "
                         f"'{stage}'")
                if not isinstance(hist, dict):
                    fail(f"ledger line {i}: profile stage '{stage}' "
                         f"is not an object")
                if set(hist) != {"total", "count", "sum_ns"}:
                    fail(f"ledger line {i}: profile stage '{stage}' "
                         f"keys {sorted(hist)}")
                total = check_counter(i, hist, "total")
                count = check_counter(i, hist, "count")
                check_counter(i, hist, "sum_ns")
                if count > total:
                    fail(f"ledger line {i}: profile stage '{stage}' "
                         f"count {count} > total {total}")
        # Predictive-analysis fields: predicted on every row of a
        # -predict campaign; predicted_confirmed only alongside it,
        # bounded by that iteration's raw prediction count.
        if "predicted" in obj:
            check_counter(i, obj, "predicted")
        if "predicted_confirmed" in obj:
            if "predicted" not in obj:
                fail(f"ledger line {i}: predicted_confirmed without "
                     f"predicted")
            v = check_counter(i, obj, "predicted_confirmed", minimum=1)
            if v > obj["predicted"]:
                fail(f"ledger line {i}: predicted_confirmed {v} "
                     f"exceeds predicted {obj['predicted']}")
        # Lint-bridge fields: static_warnings on every row of a
        # lint-guided campaign, confirmed_warnings only on bug rows
        # and never without the bridge active.
        if "static_warnings" in obj:
            v = obj["static_warnings"]
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                fail(f"ledger line {i}: bad static_warnings {v!r}")
        if "confirmed_warnings" in obj:
            if not obj["bug"]:
                fail(f"ledger line {i}: confirmed_warnings on a "
                     f"non-bug row")
            if "static_warnings" not in obj:
                fail(f"ledger line {i}: confirmed_warnings without "
                     f"static_warnings")
            v = obj["confirmed_warnings"]
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                fail(f"ledger line {i}: bad confirmed_warnings {v!r}")
            if v > obj["static_warnings"]:
                fail(f"ledger line {i}: confirmed_warnings {v} exceeds "
                     f"static_warnings {obj['static_warnings']}")
    return lines


def check_chrome_trace(path):
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as e:
        fail(f"chrome trace is not valid JSON: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("chrome trace has no traceEvents array")

    tids = {e["tid"] for e in events if "tid" in e}
    named = {e["tid"]: e["args"]["name"] for e in events
             if e.get("ph") == "M" and e.get("name") == "thread_name"}
    for tid in tids:
        if tid not in named:
            fail(f"track tid={tid} has no thread_name metadata")
    app_tracks = [n for n in named.values() if n.startswith("G")]
    if not app_tracks:
        fail("no goroutine tracks in chrome trace")

    durations = [e for e in events if e.get("ph") == "X"]
    if not durations:
        fail("no duration (blocking-episode) events in chrome trace")
    for e in durations:
        if "dur" not in e or e["dur"] < 0:
            fail(f"duration event without sane dur: {e}")

    starts = {e["id"] for e in events if e.get("ph") == "s"}
    finishes = {e["id"] for e in events if e.get("ph") == "f"}
    if starts != finishes:
        fail(f"unpaired flow ids: starts={starts} finishes={finishes}")

    for e in events:
        if "ts" not in e and e.get("ph") != "M":
            fail(f"event without ts: {e}")
    return events, starts


def canonical_rows(lines):
    """Ledger rows minus the host-dependent fields (timing, metrics)
    and the worker assignment, which legitimately differ between runs
    of the same campaign at different -jobs values."""
    rows = []
    for line in lines:
        obj = json.loads(line)
        # "recipe" holds the caller-chosen -record path, which differs
        # between the two campaigns by construction; "respawns" counts
        # the owning shard's prior deaths, a wall-clock accident of
        # where earlier crashes landed.
        for key in ("wall_us", "metrics", "worker", "wseq", "recipe",
                    "respawns"):
            obj.pop(key, None)
        # Profile sum_ns is sampled wall time (host noise); the entry
        # counters total/count are deterministic and stay canonical.
        for hist in obj.get("profile", {}).values():
            hist.pop("sum_ns", None)
        rows.append(obj)
    return rows


def run_goat(goat, kernel, iterations, ledger, trace=None, jobs=None,
             record=None, lint_guided=False, extra=(), delay=2,
             cov=True):
    cmd = [goat, f"-kernel={kernel}", f"-d={delay}",
           f"-freq={iterations}"]
    if cov:
        cmd.append("-cov")
    cmd.append(f"-ledger={ledger}")
    if trace is not None:
        cmd.append(f"-chrome-trace={trace}")
    if jobs is not None:
        cmd.append(f"-jobs={jobs}")
    if record is not None:
        cmd.append(f"-record={record}")
    if lint_guided:
        cmd.append("-lint-guided")
    cmd.extend(extra)
    proc = subprocess.run(cmd, capture_output=True, text=True,
                          timeout=90)
    if proc.returncode != 0:
        fail(f"goat exited {proc.returncode}: {proc.stdout}"
             f"{proc.stderr}")
    if not ledger.exists():
        fail(f"ledger file not written (cmd: {' '.join(cmd)})")


def check_recipe_roundtrip(goat, kernel, recipe1, recipe4):
    """Recipe capture must be jobs-independent and replayable."""
    if not recipe1.exists() or not recipe4.exists():
        fail("bug found but recipe file(s) not written")
    if recipe1.read_bytes() != recipe4.read_bytes():
        fail("-jobs=4 recipe differs from -jobs=1 recipe")
    if not recipe1.read_text().startswith("# goat-recipe v1"):
        fail("recipe file lacks the v1 magic header")
    proc = subprocess.run(
        [goat, f"-kernel={kernel}", f"-replay={recipe1}"],
        capture_output=True, text=True, timeout=90)
    if proc.returncode != 0:
        fail(f"replay of recorded recipe exited {proc.returncode}: "
             f"{proc.stdout}{proc.stderr}")


def main():
    if len(sys.argv) < 2:
        fail("usage: check_ledger.py /path/to/goat [kernel]")
    goat = sys.argv[1]
    kernel = sys.argv[2] if len(sys.argv) > 2 else "cockroach_1055"
    iterations = 25

    with tempfile.TemporaryDirectory(prefix="goat_ledger_") as tmp:
        ledger = Path(tmp) / "run.jsonl"
        trace = Path(tmp) / "trace.json"
        recipe1 = Path(tmp) / "bug.recipe"
        run_goat(goat, kernel, iterations, ledger, trace=trace,
                 record=recipe1)

        lines = check_ledger(ledger, expect_min_lines=1)

        # The same campaign fanned over 4 workers must produce a
        # ledger with identical canonical content (same rows, same
        # seeds/outcomes/verdicts/coverage) and valid worker tags.
        ledger4 = Path(tmp) / "run_j4.jsonl"
        recipe4 = Path(tmp) / "bug_j4.recipe"
        run_goat(goat, kernel, iterations, ledger4, jobs=4,
                 record=recipe4)
        lines4 = check_ledger(ledger4, expect_min_lines=1)
        if canonical_rows(lines) != canonical_rows(lines4):
            fail("-jobs=4 ledger content differs from -jobs=1")
        bug_found = any(json.loads(l)["bug"] for l in lines)
        if bug_found:
            if not trace.exists():
                fail("bug found but no chrome trace written")
            events, flows = check_chrome_trace(trace)
            bug_rows = [json.loads(l) for l in lines
                        if json.loads(l)["bug"]]
            if not any("recipe" in r for r in bug_rows):
                fail("bug row does not reference the recorded recipe")
            check_recipe_roundtrip(goat, kernel, recipe1, recipe4)
            print(f"check_ledger: OK — {len(lines)} ledger line(s) "
                  f"(identical at -jobs=4), {len(events)} trace "
                  f"event(s), {len(flows)} flow pair(s), recipe "
                  f"round-trip replayed")
        else:
            print(f"check_ledger: OK — {len(lines)} ledger line(s) "
                  f"(identical at -jobs=4), no bug surfaced so no "
                  f"trace expected")

        # Process-isolated campaign: the same iterations executed in
        # forked shard children and folded through the supervisor's
        # pipe protocol must reproduce the in-process canonical rows
        # exactly (seed partitioning makes shard placement
        # irrelevant; worker/wseq/respawns are stripped as
        # placement accidents).
        isol = Path(tmp) / "isolate.jsonl"
        run_goat(goat, kernel, iterations, isol, jobs=3,
                 extra=["-isolate"])
        ilines = check_ledger(isol, expect_min_lines=1)
        if canonical_rows(lines) != canonical_rows(ilines):
            fail("-isolate ledger content differs from in-process")
        print(f"check_ledger: OK — isolated campaign: {len(ilines)} "
              f"row(s) canonical with the in-process run")

        # Supervised crash triage: the hostile_segfault fixture
        # genuinely segfaults its shard when the perturber delays the
        # publisher. The campaign must survive every death (exit 0),
        # classify each as a "crashed"/"sigsegv" row, and keep
        # executing the surrounding iterations.
        chaos = Path(tmp) / "chaos.jsonl"
        run_goat(goat, "hostile_segfault", 12, chaos, jobs=2,
                 cov=False, extra=["-isolate"])
        crows = [json.loads(l)
                 for l in check_ledger(chaos, expect_min_lines=12)]
        crashed = [r for r in crows if r["outcome"] == "crashed"]
        if not crashed:
            fail("hostile_segfault campaign produced no crash row")
        for r in crashed:
            if r.get("crash_cause") != "sigsegv":
                fail(f"crash row {r['iter']} classified "
                     f"{r.get('crash_cause')!r}, expected 'sigsegv'")
        if not any(r["outcome"] == "ok" for r in crows):
            fail("hostile_segfault campaign has no passing rows "
                 "(crashes must not stop the campaign)")
        print(f"check_ledger: OK — supervised campaign: "
              f"{len(crashed)} classified crash(es) among "
              f"{len(crows)} row(s), campaign survived")

        # Lint-guided campaigns stamp static_warnings on every row
        # (and confirmed_warnings on the bug row); both are computed
        # from campaign-deterministic inputs, so the jobs=1 vs jobs=4
        # byte-identity guarantee extends to them — note that
        # canonical_rows() deliberately KEEPS the lint fields.
        lintl1 = Path(tmp) / "lint_j1.jsonl"
        lintl4 = Path(tmp) / "lint_j4.jsonl"
        run_goat(goat, kernel, iterations, lintl1, lint_guided=True)
        run_goat(goat, kernel, iterations, lintl4, jobs=4,
                 lint_guided=True)
        lrows1 = check_ledger(lintl1, expect_min_lines=1)
        lrows4 = check_ledger(lintl4, expect_min_lines=1)
        for i, line in enumerate(lrows1, 1):
            obj = json.loads(line)
            if "static_warnings" not in obj:
                fail(f"lint-guided ledger line {i} lacks "
                     f"static_warnings")
            if obj["bug"] and "confirmed_warnings" not in obj:
                fail(f"lint-guided ledger bug row {i} lacks "
                     f"confirmed_warnings")
        if canonical_rows(lrows1) != canonical_rows(lrows4):
            fail("lint-guided -jobs=4 ledger differs from -jobs=1")
        print(f"check_ledger: OK — lint-guided campaign: "
              f"{len(lrows1)} row(s), static/confirmed warning "
              f"stamps identical at -jobs=4")

        # MHP-pruned campaigns seed the perturber from the static MHP
        # pair set — a pure function of the kernel source, identical
        # across workers — so the jobs=1 vs jobs=4 byte-identity
        # guarantee must extend to -mhp-prune unchanged.
        mhpl1 = Path(tmp) / "mhp_j1.jsonl"
        mhpl4 = Path(tmp) / "mhp_j4.jsonl"
        run_goat(goat, kernel, iterations, mhpl1,
                 extra=["-mhp-prune"])
        run_goat(goat, kernel, iterations, mhpl4, jobs=4,
                 extra=["-mhp-prune"])
        mrows1 = check_ledger(mhpl1, expect_min_lines=1)
        mrows4 = check_ledger(mhpl4, expect_min_lines=1)
        if canonical_rows(mrows1) != canonical_rows(mrows4):
            fail("-mhp-prune -jobs=4 ledger differs from -jobs=1")
        print(f"check_ledger: OK — mhp-pruned campaign: "
              f"{len(mrows1)} row(s), canonical content identical "
              f"at -jobs=4")

        # Predictive campaign: every row of a -predict run carries the
        # predicted stamp, confirmed iterations carry
        # predicted_confirmed, and the merged findings document plus
        # the canonical ledger rows are byte-identical between -jobs=1
        # and -jobs=4 (the confirmation replays run on the campaign
        # thread after the deterministic merge — docs/ANALYSIS.md §7).
        # cockroach_7504 at D=0 passes its schedules, which is exactly
        # the predictive tier's input: bugs inferred without ever
        # driving the bad interleaving.
        predl1 = Path(tmp) / "pred_j1.jsonl"
        predl4 = Path(tmp) / "pred_j4.jsonl"
        pred1 = Path(tmp) / "pred_j1.json"
        pred4 = Path(tmp) / "pred_j4.json"
        run_goat(goat, "cockroach_7504", 8, predl1, delay=0, cov=False,
                 extra=["-predict", f"-predict-out={pred1}"])
        run_goat(goat, "cockroach_7504", 8, predl4, jobs=4, delay=0,
                 cov=False, extra=["-predict", f"-predict-out={pred4}"])
        drows1 = check_ledger(predl1, expect_min_lines=1)
        drows4 = check_ledger(predl4, expect_min_lines=1)
        for i, line in enumerate(drows1, 1):
            if "predicted" not in json.loads(line):
                fail(f"-predict ledger line {i} lacks predicted stamp")
        if canonical_rows(drows1) != canonical_rows(drows4):
            fail("-predict -jobs=4 ledger differs from -jobs=1")
        for pred in (pred1, pred4):
            if not pred.exists():
                fail(f"prediction findings {pred} not written")
        doc = json.loads(pred1.read_text())
        for key in ("kernel", "predicted", "confirmed", "predictions"):
            if key not in doc:
                fail(f"prediction findings missing '{key}'")
        if doc["predicted"] < 1:
            fail("predictive campaign produced no prediction")
        if doc["confirmed"] < 1:
            fail("no prediction confirmed by synthesized replay")
        if len(doc["predictions"]) != doc["predicted"]:
            fail(f"prediction count {doc['predicted']} does not match "
                 f"{len(doc['predictions'])} findings")
        for p in doc["predictions"]:
            for key in ("kind", "iter", "obj", "gid_a", "loc_a",
                        "vc_a", "gid_b", "loc_b", "vc_b", "delay_gid",
                        "delay_loc", "detail", "confirmed"):
                if key not in p:
                    fail(f"prediction finding missing '{key}': {p}")
            if p["confirmed"] and "confirm_verdict" not in p:
                fail(f"confirmed finding lacks confirm_verdict: {p}")
        if pred1.read_bytes() != pred4.read_bytes():
            fail("-jobs=4 prediction findings differ from -jobs=1")
        print(f"check_ledger: OK — predictive campaign: "
              f"{doc['predicted']} prediction(s), {doc['confirmed']} "
              f"confirmed, findings byte-identical at -jobs=4")

        # Observability campaign: -profile stamps per-stage histogram
        # rows (deterministic entry counters canonical across -jobs),
        # and -saturation-out emits a JSONL series derived from the
        # canonical merged coverage fold, so both the series and its
        # HTML report must be byte-identical between -jobs=1 and
        # -jobs=4.
        profl1 = Path(tmp) / "prof_j1.jsonl"
        profl4 = Path(tmp) / "prof_j4.jsonl"
        sat1 = Path(tmp) / "sat_j1.jsonl"
        sat4 = Path(tmp) / "sat_j4.jsonl"
        run_goat(goat, kernel, iterations, profl1,
                 extra=["-profile", f"-saturation-out={sat1}"])
        run_goat(goat, kernel, iterations, profl4, jobs=4,
                 extra=["-profile", f"-saturation-out={sat4}"])
        prows1 = check_ledger(profl1, expect_min_lines=1)
        prows4 = check_ledger(profl4, expect_min_lines=1)
        for i, line in enumerate(prows1, 1):
            obj = json.loads(line)
            if "profile" not in obj:
                fail(f"-profile ledger line {i} lacks profile stamp")
            if "covered" not in obj:
                fail(f"-cov ledger line {i} lacks covered/req_total")
        if canonical_rows(prows1) != canonical_rows(prows4):
            fail("-profile -jobs=4 ledger differs from -jobs=1 "
                 "(profile entry counters must be deterministic)")
        for sat in (sat1, sat4):
            if not sat.exists():
                fail(f"saturation series {sat} not written")
            html = Path(str(sat) + ".html")
            if not html.exists() or "<svg" not in html.read_text():
                fail(f"saturation HTML report {html} missing or "
                     f"lacks the inline SVG chart")
            for i, line in enumerate(
                    sat.read_text().splitlines(), 1):
                row = json.loads(line)
                for key in ("iter", "covered", "total", "pct",
                            "blocked", "unblocking", "nop",
                            "blocking"):
                    if key not in row:
                        fail(f"saturation line {i} missing '{key}'")
                if row["iter"] != i:
                    fail(f"saturation line {i} has iter "
                         f"{row['iter']}")
        if sat1.read_bytes() != sat4.read_bytes():
            fail("-jobs=4 saturation series differs from -jobs=1")
        n_sat = len(sat1.read_text().splitlines())
        if n_sat != len(prows1):
            fail(f"saturation series has {n_sat} samples for "
                 f"{len(prows1)} ledger rows")
        print(f"check_ledger: OK — observability campaign: profile "
              f"stamps canonical at -jobs=4, saturation series "
              f"({n_sat} sample(s)) byte-identical, HTML report "
              f"present")


if __name__ == "__main__":
    main()
