#!/usr/bin/env python3
"""Drift check between the goat CLI parser and docs/CLI.md.

Extracts the flag set from the parser source (tools/cli_options.hh):

  * boolean flags match       arg == "-flag"
  * valued flags match        val("-flag=")

and the documented flag set from docs/CLI.md (backticked `-flag` or
`-flag=VALUE` table entries). Fails when a parsed flag is undocumented
or a documented flag no longer exists in the parser.

Usage: check_cli_docs.py [repo_root]

Registered as the `check_cli_docs` ctest; exits non-zero with a
diagnostic listing the drifted flags.
"""

import re
import sys
from pathlib import Path


def fail(msg):
    print(f"check_cli_docs: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parser_flags(source):
    """Flag names accepted by parseOptions, e.g. {'-list', '-kernel='}."""
    flags = set(re.findall(r'arg == "(-[a-z-]+)"', source))
    flags |= set(re.findall(r'val\("(-[a-z-]+=)"\)', source))
    return flags


def documented_flags(markdown):
    """Backticked flags in CLI.md, normalized to the parser's form."""
    flags = set()
    for m in re.findall(r"`(-[a-z-]+)(=[A-Za-z0-9_]*)?`", markdown):
        flags.add(m[0] + ("=" if m[1] else ""))
    return flags


def main():
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(__file__).resolve().parent.parent
    parser_src = root / "tools" / "cli_options.hh"
    doc = root / "docs" / "CLI.md"
    if not parser_src.exists():
        fail(f"parser source not found: {parser_src}")
    if not doc.exists():
        fail(f"flag reference not found: {doc}")

    parsed = parser_flags(parser_src.read_text())
    documented = documented_flags(doc.read_text())
    if not parsed:
        fail(f"no flags extracted from {parser_src} — pattern drift?")

    undocumented = sorted(parsed - documented)
    stale = sorted(documented - parsed)
    if undocumented:
        fail(f"flags missing from docs/CLI.md: {', '.join(undocumented)}")
    if stale:
        fail(f"docs/CLI.md documents unknown flags: {', '.join(stale)}")
    print(f"check_cli_docs: OK — {len(parsed)} flags documented")


if __name__ == "__main__":
    main()
