#!/usr/bin/env python3
"""Execute the fenced CLI examples of the analysis docs.

Extracts every `./build/tools/goat ...` command from the ```sh fences
of docs/ANALYSIS.md and docs/CLI.md and runs it against the real
binary, so the documented command lines cannot drift from the flag
grammar or the runtime behavior:

  * backslash continuations are joined; leading VAR=VAL assignments
    become environment overrides; other fence lines (comments, example
    loops) are ignored;
  * each document's commands run sequentially in one shared temporary
    directory, so chained examples (record then replay) see each
    other's artifacts; the repo's `examples` and `src` trees are
    symlinked in for the -lint-path= examples;
  * iteration budgets are capped (-freq= is clamped, harder for
    -kernel=all sweeps) to keep the check fast without changing what
    is exercised;
  * a command fails the check when it exits outside {0, 1} (1 is the
    documented bug-found/replay-mismatch status) or prints a `goat:`
    error line on stderr (unwritable artifact, unreadable recipe).

Usage: check_docs.py /path/to/goat [repo_root]

Registered as the `check_docs` ctest and run by CI's predictive
analysis smoke step; exits non-zero with the offending command and
its output on the first violation.
"""

import re
import subprocess
import sys
import tempfile
from pathlib import Path

DOCS = ("docs/ANALYSIS.md", "docs/CLI.md")
FREQ_CAP = 50
FREQ_CAP_ALL = 5
GOAT_CMD = "./build/tools/goat"


def fail(msg):
    print(f"check_docs: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def sh_fences(markdown):
    """The contents of every ```sh fenced block, in order."""
    return re.findall(r"```sh\n(.*?)```", markdown, re.DOTALL)


def commands(markdown):
    """Joined goat command lines from the document's sh fences."""
    cmds = []
    for fence in sh_fences(markdown):
        # Join backslash continuations before filtering lines.
        joined = re.sub(r"\\\n\s*", " ", fence)
        for line in joined.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            tokens = line.split()
            env = {}
            while tokens and re.fullmatch(r"[A-Z_][A-Z0-9_]*=\S*",
                                          tokens[0]):
                key, _, value = tokens.pop(0).partition("=")
                env[key] = value
            if tokens and tokens[0] == GOAT_CMD:
                cmds.append((env, tokens))
    return cmds


def cap_freq(tokens):
    """Clamp -freq=N so doc-scale budgets stay test-scale."""
    cap = FREQ_CAP_ALL if "-kernel=all" in tokens else FREQ_CAP
    for i, tok in enumerate(tokens):
        if tok.startswith("-freq="):
            tokens[i] = f"-freq={min(int(tok[len('-freq='):]), cap)}"
    return tokens


def run_one(goat, env, tokens, cwd, base_env):
    argv = [goat] + cap_freq(tokens[1:])
    shown = " ".join([f"{k}={v}" for k, v in env.items()] + argv)
    proc = subprocess.run(argv, cwd=cwd, capture_output=True,
                          text=True, timeout=120,
                          env={**base_env, **env})
    if proc.returncode not in (0, 1):
        fail(f"`{shown}` exited {proc.returncode}:\n"
             f"{proc.stdout}{proc.stderr}")
    if "goat:" in proc.stderr:
        fail(f"`{shown}` reported an error:\n{proc.stderr}")
    return shown


def main():
    if len(sys.argv) < 2:
        fail("usage: check_docs.py /path/to/goat [repo_root]")
    goat = str(Path(sys.argv[1]).resolve())
    root = Path(sys.argv[2]).resolve() if len(sys.argv) > 2 else \
        Path(__file__).resolve().parent.parent

    import os
    base_env = dict(os.environ)
    total = 0
    for doc in DOCS:
        path = root / doc
        if not path.exists():
            fail(f"document not found: {path}")
        cmds = commands(path.read_text())
        if not cmds:
            fail(f"no goat commands extracted from {doc} — "
                 f"fence drift?")
        with tempfile.TemporaryDirectory(prefix="goat_docs_") as tmp:
            # Relative -lint-path= targets resolve against the repo.
            for tree in ("examples", "src"):
                (Path(tmp) / tree).symlink_to(root / tree)
            for env, tokens in cmds:
                shown = run_one(goat, env, tokens, tmp, base_env)
                print(f"check_docs: ran [{doc}] {shown}")
                total += 1
    print(f"check_docs: OK — {total} documented command(s) executed")


if __name__ == "__main__":
    main()
